package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	janus "repro"
	"repro/internal/adt"
	"repro/internal/health"
	"repro/internal/obs"
	"repro/internal/oplog"
	"repro/internal/rec"
	"repro/internal/wal"
)

// durableCfg is the base durable-server config for tests: fsync=always
// (the strictest policy, and the one the acceptance soak requires) with
// snapshots off unless a test turns them on.
func durableCfg(dir string) Config {
	return Config{Runner: testRunner(), DataDir: dir, Fsync: wal.FsyncAlways, SnapshotEvery: -1}
}

// mixedBatch builds a deterministic batch touching a counter, the kv
// map, and the stack — enough state variety that digest comparisons
// mean something.
func mixedBatch(id string, n int64) *Batch {
	return &Batch{ID: id, Tasks: []TaskSpec{
		{Ops: []OpSpec{{Op: "add", Loc: "c0", Delta: n}}},
		{Ops: []OpSpec{
			{Op: "put", Loc: "kv", Key: fmt.Sprintf("k%d", n%8), Val: id},
			{Op: "push", Loc: "stk", Delta: n},
		}},
	}}
}

// shutdown drains, closes journals, and closes the test server — the
// planned-shutdown path a durable server takes.
func shutdown(t *testing.T, srv *Server, ts *httptest.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := srv.CloseJournals(); err != nil {
		t.Fatalf("closing journals: %v", err)
	}
	ts.Close()
}

// oracleReplay replays batch specs in journal order from the initial
// state and returns the digest the server must report.
func oracleReplay(t *testing.T, sch Schema, specs map[string]*Batch, ids []string) string {
	t.Helper()
	st := InitialState(sch)
	for _, id := range ids {
		b, ok := specs[id]
		if !ok {
			t.Fatalf("journal holds id %q no client ever submitted", id)
		}
		next, err := ApplySequential(st, sch, b)
		if err != nil {
			t.Fatalf("oracle replay of %q: %v", id, err)
		}
		st = next
	}
	return rec.FormatDigest(rec.Digest(st))
}

// TestDurableRestartExactlyOnce is the tentpole round trip: acked
// batches survive a restart byte-for-byte (digest-verified), the
// exactly-once seen index survives with them, and a duplicate submitted
// after the restart is refused with the original verdict.
func TestDurableRestartExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	specs := map[string]*Batch{}

	srv := NewServer(durableCfg(dir))
	ts := httptest.NewServer(srv.Handler())
	c := ts.Client()

	type verdict struct {
		digest  string
		applied int64
	}
	verdicts := map[string]verdict{}
	for _, tenant := range []string{"alpha", "beta"} {
		for i := int64(1); i <= 5; i++ {
			id := fmt.Sprintf("%s-b%d", tenant, i)
			b := mixedBatch(id, i*7)
			specs[tenant+"/"+id] = b
			var res BatchResult
			if code, _ := postBatch(t, c, ts.URL, tenant, b, &res); code != http.StatusOK {
				t.Fatalf("submit %s: status %d", id, code)
			}
			verdicts[tenant+"/"+id] = verdict{res.Digest, res.Applied}
		}
	}

	// A pre-restart duplicate already carries the original verdict.
	var er ErrorReply
	if code, _ := postBatch(t, c, ts.URL, "alpha", specs["alpha/alpha-b3"], &er); code != http.StatusConflict {
		t.Fatalf("duplicate before restart: status %d", code)
	}
	v := verdicts["alpha/alpha-b3"]
	if er.Code != CodeDuplicate || er.Applied != v.applied || er.Digest != v.digest {
		t.Fatalf("409 verdict %+v, want applied=%d digest=%s", er, v.applied, v.digest)
	}

	var before StateReply
	getJSON(t, c, ts.URL+"/statez?tenant=alpha", &before)
	shutdown(t, srv, ts)

	// Restart on the same data dir: eager boot recovery finds both
	// tenants and proves their journals.
	srv2 := NewServer(durableCfg(dir))
	names, err := srv2.RecoverTenants()
	if err != nil {
		t.Fatalf("boot recovery: %v", err)
	}
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Fatalf("recovered tenants %v, want [alpha beta]", names)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer shutdown(t, srv2, ts2)
	c2 := ts2.Client()

	var after StateReply
	getJSON(t, c2, ts2.URL+"/statez?tenant=alpha", &after)
	if after.Digest != before.Digest || after.Applied != before.Applied {
		t.Fatalf("restart changed alpha: %+v -> %+v", before, after)
	}

	// The journal listing survives in order and replays to the digest.
	var j JournalReply
	getJSON(t, c2, ts2.URL+"/journalz?tenant=alpha", &j)
	if len(j.IDs) != 5 {
		t.Fatalf("journal ids %v", j.IDs)
	}
	prefixed := make([]string, len(j.IDs))
	for i, id := range j.IDs {
		prefixed[i] = "alpha/" + id
	}
	if got := oracleReplay(t, srv2.Schema(), specs, prefixed); got != after.Digest {
		t.Fatalf("oracle replay %s, server %s", got, after.Digest)
	}

	// Duplicates across the restart return the original verdict.
	for _, tenant := range []string{"alpha", "beta"} {
		id := fmt.Sprintf("%s-b2", tenant)
		var er ErrorReply
		code, _ := postBatch(t, c2, ts2.URL, tenant, specs[tenant+"/"+id], &er)
		v := verdicts[tenant+"/"+id]
		if code != http.StatusConflict || er.Code != CodeDuplicate || er.Applied != v.applied || er.Digest != v.digest {
			t.Fatalf("%s duplicate after restart: %d %+v, want verdict %+v", id, code, er, v)
		}
	}

	// And the tenant keeps serving: the next batch lands at applied+1.
	var res BatchResult
	nb := mixedBatch("alpha-b6", 99)
	specs["alpha/alpha-b6"] = nb
	if code, _ := postBatch(t, c2, ts2.URL, "alpha", nb, &res); code != http.StatusOK || res.Applied != 6 {
		t.Fatalf("post-restart submit: %d %+v", code, res)
	}

	var h HealthReply
	getJSON(t, c2, ts2.URL+"/healthz", &h)
	if th := h.Tenants["alpha"]; th.WalSeq != 6 || th.RecoveredTruncations != 0 {
		t.Fatalf("alpha health %+v, want wal_seq 6 and no truncations", th)
	}
}

// TestDurableSeenOutlivesJournalCap pins the satellite fix directly:
// duplicate refusal consults the seen index, which is complete and
// durable, not the capped display journal — so a duplicate of the
// oldest batch still 409s even when the display journal has evicted it.
func TestDurableSeenOutlivesJournalCap(t *testing.T) {
	dir := t.TempDir()
	srv := NewServer(durableCfg(dir))
	ts := httptest.NewServer(srv.Handler())
	c := ts.Client()

	first := mixedBatch("cap-1", 1)
	postBatch(t, c, ts.URL, "cap", first, nil)
	for i := int64(2); i <= 6; i++ {
		postBatch(t, c, ts.URL, "cap", mixedBatch(fmt.Sprintf("cap-%d", i), i), nil)
	}
	// Simulate the display journal aging past the first entry (the real
	// cap is 65536; evict manually rather than submitting 65k batches).
	tn := srv.lookup("cap")
	tn.mu.Lock()
	tn.journal = tn.journal[1:]
	tn.mu.Unlock()

	var er ErrorReply
	if code, _ := postBatch(t, c, ts.URL, "cap", first, &er); code != http.StatusConflict || er.Code != CodeDuplicate || er.Applied != 1 {
		t.Fatalf("evicted-from-display duplicate: %d %+v", code, er)
	}
	shutdown(t, srv, ts)

	// Same refusal after a restart.
	srv2 := NewServer(durableCfg(dir))
	ts2 := httptest.NewServer(srv2.Handler())
	defer shutdown(t, srv2, ts2)
	if code, _ := postBatch(t, ts2.Client(), ts2.URL, "cap", first, &er); code != http.StatusConflict || er.Applied != 1 {
		t.Fatalf("duplicate after restart: %d %+v", code, er)
	}
}

// TestDurableSnapshotBoundsRecovery: snapshots publish in the
// background, truncate covered segments, and a restart recovers from
// snapshot + suffix to the identical digest.
func TestDurableSnapshotBoundsRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := durableCfg(dir)
	cfg.SnapshotEvery = 4
	cfg.SegmentBytes = 512
	srv := NewServer(cfg)
	ts := httptest.NewServer(srv.Handler())
	c := ts.Client()

	for i := int64(1); i <= 11; i++ {
		if code, _ := postBatch(t, c, ts.URL, "snappy", mixedBatch(fmt.Sprintf("s-%d", i), i), nil); code != http.StatusOK {
			t.Fatalf("submit %d: %d", i, code)
		}
	}
	// Wait for the background snapshot to land.
	tn := srv.lookup("snappy")
	deadline := time.Now().Add(5 * time.Second)
	for tn.lastSnap.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no snapshot published")
		}
		time.Sleep(5 * time.Millisecond)
	}
	var before StateReply
	getJSON(t, c, ts.URL+"/statez?tenant=snappy", &before)
	shutdown(t, srv, ts)

	snaps, _ := filepath.Glob(filepath.Join(dir, "snappy", "snap-*.jsnap"))
	if len(snaps) == 0 {
		t.Fatal("no snapshot file on disk")
	}

	srv2 := NewServer(cfg)
	if _, err := srv2.RecoverTenants(); err != nil {
		t.Fatalf("boot recovery: %v", err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer shutdown(t, srv2, ts2)
	var after StateReply
	getJSON(t, ts2.Client(), ts2.URL+"/statez?tenant=snappy", &after)
	if after.Digest != before.Digest || after.Applied != 11 {
		t.Fatalf("snapshot recovery: %+v -> %+v", before, after)
	}
	// Exactly-once still holds for batches older than the snapshot (their
	// journal records may be truncated; the snapshot's seen table covers
	// them).
	var er ErrorReply
	if code, _ := postBatch(t, ts2.Client(), ts2.URL, "snappy", mixedBatch("s-1", 1), &er); code != http.StatusConflict || er.Applied != 1 {
		t.Fatalf("pre-snapshot duplicate: %d %+v", code, er)
	}
}

// TestDurableRecoveryEdgeCases walks the recovery matrix the issue
// calls out at the serving layer.
func TestDurableRecoveryEdgeCases(t *testing.T) {
	t.Run("EmptyDataDir", func(t *testing.T) {
		srv := NewServer(durableCfg(t.TempDir()))
		names, err := srv.RecoverTenants()
		if err != nil || len(names) != 0 {
			t.Fatalf("empty dir recovery: %v %v", names, err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer shutdown(t, srv, ts)
		var res BatchResult
		if code, _ := postBatch(t, ts.Client(), ts.URL, "fresh", mixedBatch("a", 1), &res); code != http.StatusOK {
			t.Fatalf("fresh durable submit: %d", code)
		}
	})

	t.Run("SnapshotWithoutJournal", func(t *testing.T) {
		dir := t.TempDir()
		srv := NewServer(durableCfg(dir))
		ts := httptest.NewServer(srv.Handler())
		c := ts.Client()
		for i := int64(1); i <= 5; i++ {
			postBatch(t, c, ts.URL, "t", mixedBatch(fmt.Sprintf("b-%d", i), i), nil)
		}
		var before StateReply
		getJSON(t, c, ts.URL+"/statez?tenant=t", &before)
		if err := srv.lookup("t").writeSnapshotNow(); err != nil {
			t.Fatal(err)
		}
		shutdown(t, srv, ts)
		segs, _ := filepath.Glob(filepath.Join(dir, "t", "wal-*.seg"))
		for _, s := range segs {
			os.Remove(s)
		}
		srv2 := NewServer(durableCfg(dir))
		if _, err := srv2.RecoverTenants(); err != nil {
			t.Fatalf("boot recovery: %v", err)
		}
		ts2 := httptest.NewServer(srv2.Handler())
		defer shutdown(t, srv2, ts2)
		var after StateReply
		getJSON(t, ts2.Client(), ts2.URL+"/statez?tenant=t", &after)
		if after.Digest != before.Digest || after.Applied != 5 {
			t.Fatalf("snapshot-only recovery: %+v", after)
		}
		var er ErrorReply
		if code, _ := postBatch(t, ts2.Client(), ts2.URL, "t", mixedBatch("b-2", 2), &er); code != http.StatusConflict {
			t.Fatalf("duplicate from snapshot seen-table: %d %+v", code, er)
		}
	})

	t.Run("TornFinalRecord", func(t *testing.T) {
		dir := t.TempDir()
		srv := NewServer(durableCfg(dir))
		ts := httptest.NewServer(srv.Handler())
		c := ts.Client()
		specs := map[string]*Batch{}
		for i := int64(1); i <= 4; i++ {
			id := fmt.Sprintf("b-%d", i)
			specs[id] = mixedBatch(id, i)
			postBatch(t, c, ts.URL, "t", specs[id], nil)
		}
		shutdown(t, srv, ts)
		segs, _ := filepath.Glob(filepath.Join(dir, "t", "wal-*.seg"))
		if len(segs) != 1 {
			t.Fatalf("segments: %v", segs)
		}
		info, _ := os.Stat(segs[0])
		if err := os.Truncate(segs[0], info.Size()-3); err != nil {
			t.Fatal(err)
		}

		srv2 := NewServer(durableCfg(dir))
		if _, err := srv2.RecoverTenants(); err != nil {
			t.Fatalf("boot recovery: %v", err)
		}
		ts2 := httptest.NewServer(srv2.Handler())
		defer shutdown(t, srv2, ts2)
		c2 := ts2.Client()
		var st StateReply
		getJSON(t, c2, ts2.URL+"/statez?tenant=t", &st)
		if st.Applied != 3 {
			t.Fatalf("torn tail: applied %d, want 3", st.Applied)
		}
		var h HealthReply
		getJSON(t, c2, ts2.URL+"/healthz", &h)
		if h.Tenants["t"].RecoveredTruncations != 1 {
			t.Fatalf("truncation not operator-visible: %+v", h.Tenants["t"])
		}
		var j JournalReply
		getJSON(t, c2, ts2.URL+"/journalz?tenant=t", &j)
		if got := oracleReplay(t, srv2.Schema(), specs, j.IDs); got != st.Digest {
			t.Fatalf("post-repair digest: oracle %s, server %s", got, st.Digest)
		}
		// The torn batch was cut, so its ID is free again: resubmission
		// applies it (fresh, exactly once).
		var res BatchResult
		if code, _ := postBatch(t, c2, ts2.URL, "t", specs["b-4"], &res); code != http.StatusOK || res.Applied != 4 {
			t.Fatalf("resubmit of torn batch: %d %+v", code, res)
		}
	})

	t.Run("CRCFlipMidSegment", func(t *testing.T) {
		dir := t.TempDir()
		srv := NewServer(durableCfg(dir))
		ts := httptest.NewServer(srv.Handler())
		c := ts.Client()
		specs := map[string]*Batch{}
		for i := int64(1); i <= 6; i++ {
			id := fmt.Sprintf("b-%d", i)
			specs[id] = mixedBatch(id, i)
			postBatch(t, c, ts.URL, "t", specs[id], nil)
		}
		shutdown(t, srv, ts)
		segs, _ := filepath.Glob(filepath.Join(dir, "t", "wal-*.seg"))
		buf, err := os.ReadFile(segs[0])
		if err != nil {
			t.Fatal(err)
		}
		buf[len(buf)/2] ^= 0xff
		os.WriteFile(segs[0], buf, 0o644)

		srv2 := NewServer(durableCfg(dir))
		if _, err := srv2.RecoverTenants(); err != nil {
			t.Fatalf("boot recovery: %v", err)
		}
		ts2 := httptest.NewServer(srv2.Handler())
		defer shutdown(t, srv2, ts2)
		c2 := ts2.Client()
		var st StateReply
		getJSON(t, c2, ts2.URL+"/statez?tenant=t", &st)
		if st.Applied >= 6 || st.Applied < 1 {
			t.Fatalf("corrupt journal: applied %d, want a cut prefix", st.Applied)
		}
		var h HealthReply
		getJSON(t, c2, ts2.URL+"/healthz", &h)
		if h.Tenants["t"].RecoveredTruncations == 0 {
			t.Fatalf("corruption not counted: %+v", h.Tenants["t"])
		}
		var j JournalReply
		getJSON(t, c2, ts2.URL+"/journalz?tenant=t", &j)
		if int64(len(j.IDs)) != st.Applied {
			t.Fatalf("journal/applied mismatch: %d vs %d", len(j.IDs), st.Applied)
		}
		if got := oracleReplay(t, srv2.Schema(), specs, j.IDs); got != st.Digest {
			t.Fatalf("post-repair digest: oracle %s, server %s", got, st.Digest)
		}
	})

	t.Run("SeqGapRefusesService", func(t *testing.T) {
		dir := t.TempDir()
		cfg := durableCfg(dir)
		cfg.SegmentBytes = 256 // force several segments
		srv := NewServer(cfg)
		ts := httptest.NewServer(srv.Handler())
		c := ts.Client()
		for i := int64(1); i <= 12; i++ {
			postBatch(t, c, ts.URL, "t", mixedBatch(fmt.Sprintf("b-%d", i), i), nil)
		}
		shutdown(t, srv, ts)
		segs, _ := filepath.Glob(filepath.Join(dir, "t", "wal-*.seg"))
		if len(segs) < 3 {
			t.Fatalf("need >=3 segments, got %d", len(segs))
		}
		os.Remove(segs[1]) // a hole no honest repair can bridge

		srv2 := NewServer(cfg)
		if _, err := srv2.RecoverTenants(); err == nil {
			t.Fatal("boot recovery accepted a journal with a hole")
		}
		ts2 := httptest.NewServer(srv2.Handler())
		defer ts2.Close()
		var er ErrorReply
		code, _ := postBatch(t, ts2.Client(), ts2.URL, "t", mixedBatch("new", 1), &er)
		if code != http.StatusInternalServerError || er.Code != CodeRecovery {
			t.Fatalf("submit to unrecoverable tenant: %d %+v", code, er)
		}
	})

	t.Run("TrippedGovernorTenantRecovers", func(t *testing.T) {
		dir := t.TempDir()
		cfg := durableCfg(dir)
		cfg.Runner.Governor = janus.GovernorConfig{Window: 4, TripWindows: 1, ProbeEvery: 1000}
		srv := NewServer(cfg)
		ts := httptest.NewServer(srv.Handler())
		c := ts.Client()
		var res BatchResult
		if code, _ := postBatch(t, c, ts.URL, "trippy", mixedBatch("b-1", 3), &res); code != http.StatusOK {
			t.Fatalf("submit: %d", code)
		}

		// Trip the governor directly: feed it windows of pure write-write
		// conflicts (the same drive health's own tests use).
		tn := srv.lookup("trippy")
		g := tn.runner.Governor()
		st := InitialState(srv.Schema())
		mklog := func(task int, delta int64) oplog.Log {
			op := adt.NumAddOp{L: "c0", Delta: delta}
			work := st.Clone()
			acc := op.Accesses(work)
			v, err := op.Apply(work)
			if err != nil {
				t.Fatal(err)
			}
			return oplog.Log{&oplog.Event{Op: op, Task: task, Seq: 0, Acc: acc, Observed: v}}
		}
		l1, l2 := mklog(1, 5), mklog(2, 7)
		for i := 0; i < 16 && g.State() != health.Tripped; i++ {
			g.DetectV(obs.Ctx{}, st, l1, []oplog.Log{l2})
		}
		if g.State() != health.Tripped {
			t.Fatalf("governor state %v, want tripped", g.State())
		}
		var before StateReply
		getJSON(t, c, ts.URL+"/statez?tenant=trippy", &before)
		shutdown(t, srv, ts)

		// Recovery replays through the sequential oracle — no governor in
		// the path — and the restarted tenant starts healthy and serves.
		srv2 := NewServer(cfg)
		if _, err := srv2.RecoverTenants(); err != nil {
			t.Fatalf("recovering tripped tenant: %v", err)
		}
		ts2 := httptest.NewServer(srv2.Handler())
		defer shutdown(t, srv2, ts2)
		c2 := ts2.Client()
		var after StateReply
		getJSON(t, c2, ts2.URL+"/statez?tenant=trippy", &after)
		if after.Digest != before.Digest || after.Applied != before.Applied {
			t.Fatalf("tripped-tenant recovery: %+v -> %+v", before, after)
		}
		var h HealthReply
		getJSON(t, c2, ts2.URL+"/healthz", &h)
		if h.Tenants["trippy"].Health != health.Healthy.String() {
			t.Fatalf("restarted tenant health %q", h.Tenants["trippy"].Health)
		}
		if code, _ := postBatch(t, c2, ts2.URL, "trippy", mixedBatch("b-2", 4), &res); code != http.StatusOK {
			t.Fatalf("post-recovery submit: %d", code)
		}
	})
}

// TestTenantNameValidation: names that cannot double as journal
// directory entries are rejected before any tenant (or directory) is
// created.
func TestTenantNameValidation(t *testing.T) {
	dir := t.TempDir()
	srv := NewServer(durableCfg(dir))
	ts := httptest.NewServer(srv.Handler())
	defer shutdown(t, srv, ts)
	c := ts.Client()
	// "tenant%20name" decodes to a space in the query — Go's HTTP server
	// would reject a raw space in the request line before our handler.
	for _, bad := range []string{"", "../escape", "a/b", `a\b`, ".hidden", "x..y", "tenant%20name"} {
		var er ErrorReply
		code, _ := postBatch(t, c, ts.URL, bad, mixedBatch("a", 1), &er)
		if code != http.StatusBadRequest || er.Code != CodeBadRequest {
			t.Fatalf("name %q: %d %+v, want 400", bad, code, er)
		}
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 0 {
		t.Fatalf("rejected names created directories: %v", entries)
	}
	if code, _ := postBatch(t, c, ts.URL, "ok-name_1.x", mixedBatch("a", 1), nil); code != http.StatusOK {
		t.Fatalf("valid name rejected: %d", code)
	}
}

// TestDedupWindowRetention: the exactly-once index is bounded by
// Config.DedupWindow. IDs inside the window are refused with their
// original verdict (including across restarts); IDs that aged out
// re-apply as new batches — the documented retention trade that keeps
// the index and every snapshot finite.
func TestDedupWindowRetention(t *testing.T) {
	dir := t.TempDir()
	cfg := durableCfg(dir)
	cfg.DedupWindow = 3
	srv := NewServer(cfg)
	ts := httptest.NewServer(srv.Handler())
	c := ts.Client()

	for i := int64(1); i <= 5; i++ {
		if code, _ := postBatch(t, c, ts.URL, "win", mixedBatch(fmt.Sprintf("w-%d", i), i), nil); code != http.StatusOK {
			t.Fatalf("submit %d: %d", i, code)
		}
	}
	var er ErrorReply
	if code, _ := postBatch(t, c, ts.URL, "win", mixedBatch("w-5", 5), &er); code != http.StatusConflict || er.Applied != 5 {
		t.Fatalf("in-window duplicate: %d %+v", code, er)
	}
	// w-1 aged past the 3-entry window: it re-applies at seq 6.
	var res BatchResult
	if code, _ := postBatch(t, c, ts.URL, "win", mixedBatch("w-1", 1), &res); code != http.StatusOK || res.Applied != 6 {
		t.Fatalf("evicted ID re-apply: %d %+v", code, res)
	}
	shutdown(t, srv, ts)

	// A restart rebuilds the identical bounded index: window now holds
	// w-4 (seq 4), w-5 (seq 5), and the re-applied w-1 (seq 6).
	srv2 := NewServer(cfg)
	if _, err := srv2.RecoverTenants(); err != nil {
		t.Fatalf("boot recovery: %v", err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer shutdown(t, srv2, ts2)
	c2 := ts2.Client()
	if code, _ := postBatch(t, c2, ts2.URL, "win", mixedBatch("w-5", 5), &er); code != http.StatusConflict || er.Applied != 5 {
		t.Fatalf("in-window duplicate after restart: %d %+v", code, er)
	}
	// A re-applied ID answers with its NEWEST verdict: eviction of the
	// seq-1 occurrence must not have deleted the seq-6 entry.
	if code, _ := postBatch(t, c2, ts2.URL, "win", mixedBatch("w-1", 1), &er); code != http.StatusConflict || er.Applied != 6 {
		t.Fatalf("re-applied ID verdict after restart: %d %+v", code, er)
	}
	if code, _ := postBatch(t, c2, ts2.URL, "win", mixedBatch("w-2", 2), &res); code != http.StatusOK {
		t.Fatalf("evicted ID after restart should re-apply: %d", code)
	}
}

// TestRecoveryFailureCachedAndIsolated: a tenant whose journal cannot
// be recovered fails every submit with the same cached typed error —
// the journal is replayed (and fails) once, not per request — and a
// healthy tenant on the same server is unaffected.
func TestRecoveryFailureCachedAndIsolated(t *testing.T) {
	dir := t.TempDir()
	broken := filepath.Join(dir, "broken")
	if err := os.MkdirAll(broken, 0o755); err != nil {
		t.Fatal(err)
	}
	// A segment file with the wrong magic is unrecoverable by design
	// (not crash debris — refuse to guess).
	if err := os.WriteFile(filepath.Join(broken, "wal-0000000000000001.seg"), []byte("NOTJANUS garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	srv := NewServer(durableCfg(dir))
	ts := httptest.NewServer(srv.Handler())
	c := ts.Client()

	var er ErrorReply
	if code, _ := postBatch(t, c, ts.URL, "broken", mixedBatch("x-1", 1), &er); code != http.StatusInternalServerError || er.Code != CodeRecovery {
		t.Fatalf("broken tenant submit: %d %+v, want 500 %s", code, er, CodeRecovery)
	}
	// The verdict is cached: both calls return the identical error value
	// without re-running the (failing) replay.
	_, err1 := srv.tenantFor("broken")
	_, err2 := srv.tenantFor("broken")
	if err1 == nil || err1 != err2 {
		t.Fatalf("recovery failure not cached: %v vs %v", err1, err2)
	}
	// Other tenants serve normally alongside the broken one.
	if code, _ := postBatch(t, c, ts.URL, "healthy", mixedBatch("h-1", 1), nil); code != http.StatusOK {
		t.Fatalf("healthy tenant submit: %d", code)
	}
	shutdown(t, srv, ts)
}
