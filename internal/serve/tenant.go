package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	janus "repro"
	"repro/internal/health"
	"repro/internal/rec"
	"repro/internal/wal"
)

// tenant is one client namespace: its own Runner (own spec cache handle
// and persistent governor), its own committed state, its own flight
// recorder and trace, its own durable journal when the server has a
// data dir, and its own admission counters. Nothing a tenant does —
// thrash its governor, wedge on its deadline, flood its queue — touches
// another tenant's runner, state, or journal.
type tenant struct {
	name   string
	runner *janus.Runner
	trace  *janus.Trace
	rec    *rec.Recorder

	// gate serializes batch application per tenant: batches are atomic
	// state transitions, so two cannot interleave. Waiters are bounded by
	// admission (inflight cap), never unbounded.
	gate chan struct{}

	// mu guards the committed state and the applied-batch journal.
	mu      sync.Mutex
	st      *janus.State
	applied int64
	journal []string
	// seen maps applied batch IDs to the journal position and state
	// digest their commit produced: the exactly-once index. A duplicate
	// submission is refused with the original verdict (409 carrying that
	// seq and digest) — including after a restart, because the index is
	// rebuilt from the snapshot's seen table plus the journal suffix.
	// Failed batches never enter it, so the client can retry the same ID.
	// Retention is bounded by dedupWindow: seenOrder lists the indexed
	// entries in journal order and the oldest are evicted past the
	// window, keeping the index (and every snapshot it rides in) finite.
	seen      map[string]appliedBatch
	seenOrder []seenAt
	// dedupWindow is Config.DedupWindow, copied at creation (<=0 means
	// unbounded).
	dedupWindow int

	// wal is the tenant's durable journal; nil without a data dir.
	// Appends happen under the gate (which serializes them) before the
	// in-memory state swap and before the client sees an ack.
	wal *wal.Log
	// snapEvery is the server's snapshot cadence in applied batches,
	// copied at creation (<=0 disables).
	snapEvery int
	// lastSnap is the journal seq the newest published snapshot covers.
	lastSnap atomic.Uint64
	// snapBusy serializes background snapshots; snapWG lets shutdown wait
	// for one in flight.
	snapBusy atomic.Bool
	snapWG   sync.WaitGroup

	// inflight counts admitted-but-unfinished submits; admission caps it
	// per governor state.
	inflight atomic.Int64
	// shedStreak counts consecutive sheds; Retry-After scales with it so
	// a persistently overloaded tenant's clients spread further out.
	shedStreak atomic.Int64

	// counters for /healthz and /varz
	accepted  atomic.Int64 // batches applied
	shed      atomic.Int64 // typed 429/503 rejections
	failed    atomic.Int64 // batch_failed / deadline / canceled outcomes
	retries   atomic.Int64 // cumulative run retries
	commits   atomic.Int64 // cumulative task commits
	demotions atomic.Int64 // cumulative history-entry demotions (HistoryCompress)
	histBytes atomic.Int64 // last run's live compressed-history bytes
	runNanos  atomic.Int64 // cumulative run wall time
	snapshots atomic.Int64 // snapshots published
	snapErrs  atomic.Int64 // snapshot attempts that failed
	lastState atomic.Int64 // last observed governor state (health.State)

	// set once at recovery, read-only after: repair actions the boot scan
	// took (operator-visible — the journal lost a suffix or a crash tore
	// an append) and snapshot files it had to skip.
	recTruncations int64
	recBadSnaps    int64
}

// appliedBatch is one seen-index entry: where in the journal a batch
// landed and the state digest its commit produced.
type appliedBatch struct {
	seq    uint64
	digest uint64
}

// seenAt is one retention-window entry: which ID was applied at which
// journal seq. The seq rides along so eviction of an old occurrence
// never deletes a newer apply of the same ID (possible once the ID
// aged out of the window and was legitimately re-applied).
type seenAt struct {
	id  string
	seq uint64
}

// newTenant builds a tenant from the server's runner template. With a
// data dir the tenant's state, applied count, and seen index are first
// recovered from its journal (see durable.go); the runner then gets a
// persistent governor (admission reads its live state), a per-tenant
// flight recorder as its commit sink, and a per-tenant trace feeding
// the timeline endpoint.
func (s *Server) newTenant(name string) (*tenant, error) {
	t := &tenant{
		name:        name,
		gate:        make(chan struct{}, 1),
		st:          InitialState(s.cfg.Schema),
		seen:        make(map[string]appliedBatch),
		dedupWindow: s.cfg.DedupWindow,
	}
	if s.cfg.DataDir != "" {
		t.snapEvery = s.cfg.SnapshotEvery
		if err := s.recoverTenant(t); err != nil {
			return nil, err
		}
	}
	cfg := s.cfg.Runner
	cfg.Govern = true
	cfg.GovernPersist = true
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = s.cfg.RetryBudget
	}
	t.trace = janus.NewTrace(s.cfg.TraceLane)
	cfg.Trace = t.trace
	t.rec = rec.New(rec.Meta{
		Workload: "serve:" + name,
		Detector: cfg.Detection.String(),
		Ordered:  true,
		Threads:  cfg.Threads,
	}, t.st, rec.Options{FlightChunks: s.cfg.FlightChunks})
	cfg.Record = t.rec
	t.runner = janus.New(cfg)
	if g := t.runner.Governor(); g != nil {
		health.Publish("janus.health."+name, g)
	}
	return t, nil
}

// govState reads the tenant governor's live state.
func (t *tenant) govState() health.State {
	g := t.runner.Governor()
	if g == nil {
		return health.Healthy
	}
	st := g.State()
	t.lastState.Store(int64(st))
	return st
}

// acquire takes the tenant's run gate, giving up when ctx expires (the
// batch deadline covers queue wait, not just the run).
func (t *tenant) acquire(ctx context.Context) error {
	select {
	case t.gate <- struct{}{}:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

func (t *tenant) release() { <-t.gate }

// runBatch applies one compiled batch atomically: run from the current
// committed state with ordered commits, journal the outcome durably,
// and only then swap the tenant state and acknowledge. Any error —
// deadline, task failure, retry exhaustion, journal append failure —
// leaves state, journal, and seen-set exactly as before, so the client
// can safely retry the same batch ID.
//
// The durability ordering is the tentpole invariant: the WAL append
// (fsynced under FsyncAlways) happens under the gate, after the run
// succeeds, BEFORE the in-memory swap and the ack. A crash after the
// append but before the reply leaves a durable record for a batch the
// client never saw acknowledged; recovery replays it and the client's
// retry gets the original verdict as a 409.
func (t *tenant) runBatch(ctx context.Context, b *Batch, tasks []janus.Task) (*BatchResult, error) {
	if err := t.acquire(ctx); err != nil {
		return nil, err
	}
	defer t.release()

	t.mu.Lock()
	if ab, dup := t.seen[b.ID]; dup {
		t.mu.Unlock()
		return nil, &duplicateError{id: b.ID, seq: ab.seq, digest: ab.digest}
	}
	base := t.st
	seq := uint64(t.applied) + 1
	t.mu.Unlock()

	start := time.Now()
	final, stats, err := t.runner.RunInOrderCtx(ctx, base, tasks)
	elapsed := time.Since(start)
	t.runNanos.Add(int64(elapsed))
	t.retries.Add(stats.Run.Retries)
	if err != nil {
		return nil, err
	}
	t.commits.Add(stats.Run.Commits)
	t.demotions.Add(stats.Run.Demotions)
	t.histBytes.Store(stats.Run.HistBytes)

	digest64 := rec.Digest(final)
	if t.wal != nil {
		payload, merr := json.Marshal(b)
		if merr != nil {
			return nil, fmt.Errorf("serve: encoding journal record: %w", merr)
		}
		if aerr := t.wal.Append(wal.Record{Seq: seq, ID: b.ID, Payload: payload, Digest: digest64}); aerr != nil {
			// Not journaled ⇒ not applied: the in-memory state is untouched
			// and the client gets a retryable journal error, preserving
			// ack ⇒ durable.
			return nil, &journalError{err: fmt.Errorf("serve: journaling batch %q: %w", b.ID, aerr)}
		}
	}

	t.mu.Lock()
	t.st = final
	t.applied++
	applied := t.applied
	t.journal = append(t.journal, b.ID)
	if n := len(t.journal); n > journalCap {
		// Bound the in-memory display journal; exactly-once refusal does
		// not ride on it (the seen index below is complete and durable).
		t.journal = append(t.journal[:0], t.journal[n-journalCap:]...)
	}
	t.seen[b.ID] = appliedBatch{seq: seq, digest: digest64}
	t.seenOrder = append(t.seenOrder, seenAt{id: b.ID, seq: seq})
	t.evictSeenLocked()
	digest := rec.FormatDigest(digest64)
	t.mu.Unlock()

	t.accepted.Add(1)
	t.maybeSnapshot()
	res := &BatchResult{
		ID:        b.ID,
		Tenant:    t.name,
		Tasks:     len(tasks),
		Commits:   stats.Run.Commits,
		Retries:   stats.Run.Retries,
		Digest:    digest,
		Applied:   applied,
		Health:    t.govState().String(),
		ElapsedMS: elapsed.Milliseconds(),
	}
	return res, nil
}

// journalCap bounds the retained in-memory display journal (the
// /journalz ID listing) per tenant. Exactly-once refusal does NOT
// degrade at this cap: duplicate detection consults the seen index,
// which survives restarts via snapshot + journal and is bounded only
// by the much larger (and operator-tunable) Config.DedupWindow.
const journalCap = 65536

// evictSeenLocked enforces the dedup retention window: once the seen
// index exceeds dedupWindow entries, the oldest (lowest journal seq)
// are dropped. An ID older than the window stops being refused as a
// duplicate — that is the documented retention trade; the alternative
// is an index (and snapshot) that grows forever. Caller holds t.mu.
func (t *tenant) evictSeenLocked() {
	if t.dedupWindow <= 0 {
		return
	}
	n := len(t.seenOrder) - t.dedupWindow
	if n <= 0 {
		return
	}
	for _, e := range t.seenOrder[:n] {
		// Only drop the map entry this occurrence owns: a re-applied ID
		// (aged out, then resubmitted) has a newer entry at a later seq.
		if ab, ok := t.seen[e.id]; ok && ab.seq == e.seq {
			delete(t.seen, e.id)
		}
	}
	t.seenOrder = append(t.seenOrder[:0], t.seenOrder[n:]...)
}

// snapshot reads the tenant's introspection view for /healthz.
func (t *tenant) snapshot() TenantHealth {
	t.mu.Lock()
	applied := t.applied
	journalLen := len(t.journal)
	digest := rec.FormatDigest(rec.Digest(t.st))
	t.mu.Unlock()
	th := TenantHealth{
		Health:     t.govState().String(),
		Inflight:   t.inflight.Load(),
		Applied:    applied,
		JournalLen: int64(journalLen),
		Digest:     digest,
		Accepted:   t.accepted.Load(),
		Shed:       t.shed.Load(),
		Failed:     t.failed.Load(),
		Commits:    t.commits.Load(),
		Retries:    t.retries.Load(),
		Demotions:  t.demotions.Load(),
		HistBytes:  t.histBytes.Load(),
	}
	if t.wal != nil {
		th.WalSeq = t.wal.NextSeq() - 1
		th.SnapshotSeq = t.lastSnap.Load()
		th.Snapshots = t.snapshots.Load()
		th.SnapshotErrs = t.snapErrs.Load()
		th.RecoveredTruncations = t.recTruncations
		th.RecoveredBadSnapshots = t.recBadSnaps
	}
	return th
}

// TenantHealth is one tenant's row in the /healthz reply. The journal
// fields appear only for durable tenants.
type TenantHealth struct {
	Health     string `json:"health"`
	Inflight   int64  `json:"inflight"`
	Applied    int64  `json:"applied"`
	JournalLen int64  `json:"journal_len,omitempty"`
	Digest     string `json:"digest"`
	Accepted   int64  `json:"accepted"`
	Shed       int64  `json:"shed"`
	Failed     int64  `json:"failed"`
	Commits    int64  `json:"commits"`
	Retries    int64  `json:"retries"`
	// Demotions counts committed-history entries compressed to compact
	// records across the tenant's runs (zero unless the runner enables
	// HistoryCompress); HistBytes is the last run's live compressed
	// footprint when it finished.
	Demotions int64 `json:"demotions,omitempty"`
	HistBytes int64 `json:"hist_bytes,omitempty"`
	// WalSeq is the last durably journaled sequence; SnapshotSeq the seq
	// the newest snapshot covers (recovery replays the difference).
	WalSeq       uint64 `json:"wal_seq,omitempty"`
	SnapshotSeq  uint64 `json:"snapshot_seq,omitempty"`
	Snapshots    int64  `json:"snapshots,omitempty"`
	SnapshotErrs int64  `json:"snapshot_errs,omitempty"`
	// RecoveredTruncations counts repair actions boot recovery took (torn
	// or corrupt journal tails cut back); RecoveredBadSnapshots counts
	// snapshot files it skipped as invalid. Nonzero values are the
	// operator signal that a crash or disk fault damaged the journal.
	RecoveredTruncations  int64 `json:"recovered_truncations,omitempty"`
	RecoveredBadSnapshots int64 `json:"recovered_bad_snapshots,omitempty"`
}
