package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	janus "repro"
	"repro/internal/health"
	"repro/internal/rec"
)

// tenant is one client namespace: its own Runner (own spec cache handle
// and persistent governor), its own committed state, its own flight
// recorder and trace, and its own admission counters. Nothing a tenant
// does — thrash its governor, wedge on its deadline, flood its queue —
// touches another tenant's runner or state.
type tenant struct {
	name   string
	runner *janus.Runner
	trace  *janus.Trace
	rec    *rec.Recorder

	// gate serializes batch application per tenant: batches are atomic
	// state transitions, so two cannot interleave. Waiters are bounded by
	// admission (inflight cap), never unbounded.
	gate chan struct{}

	// mu guards the committed state and the applied-batch journal.
	mu      sync.Mutex
	st      *janus.State
	applied int64
	journal []string
	// seen marks applied batch IDs for duplicate refusal. Failed batches
	// are removed so the client can retry the same ID.
	seen map[string]struct{}

	// inflight counts admitted-but-unfinished submits; admission caps it
	// per governor state.
	inflight atomic.Int64
	// shedStreak counts consecutive sheds; Retry-After scales with it so
	// a persistently overloaded tenant's clients spread further out.
	shedStreak atomic.Int64

	// counters for /healthz and /varz
	accepted  atomic.Int64 // batches applied
	shed      atomic.Int64 // typed 429/503 rejections
	failed    atomic.Int64 // batch_failed / deadline / canceled outcomes
	retries   atomic.Int64 // cumulative run retries
	commits   atomic.Int64 // cumulative task commits
	runNanos  atomic.Int64 // cumulative run wall time
	lastState atomic.Int64 // last observed governor state (health.State)
}

// newTenant builds a tenant from the server's runner template. The
// runner gets a persistent governor (admission reads its live state), a
// per-tenant flight recorder as its commit sink, and a per-tenant trace
// feeding the timeline endpoint.
func (s *Server) newTenant(name string) *tenant {
	t := &tenant{
		name: name,
		gate: make(chan struct{}, 1),
		st:   InitialState(s.cfg.Schema),
		seen: make(map[string]struct{}),
	}
	cfg := s.cfg.Runner
	cfg.Govern = true
	cfg.GovernPersist = true
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = s.cfg.RetryBudget
	}
	t.trace = janus.NewTrace(s.cfg.TraceLane)
	cfg.Trace = t.trace
	t.rec = rec.New(rec.Meta{
		Workload: "serve:" + name,
		Detector: cfg.Detection.String(),
		Ordered:  true,
		Threads:  cfg.Threads,
	}, t.st, rec.Options{FlightChunks: s.cfg.FlightChunks})
	cfg.Record = t.rec
	t.runner = janus.New(cfg)
	if g := t.runner.Governor(); g != nil {
		health.Publish("janus.health."+name, g)
	}
	return t
}

// govState reads the tenant governor's live state.
func (t *tenant) govState() health.State {
	g := t.runner.Governor()
	if g == nil {
		return health.Healthy
	}
	st := g.State()
	t.lastState.Store(int64(st))
	return st
}

// acquire takes the tenant's run gate, giving up when ctx expires (the
// batch deadline covers queue wait, not just the run).
func (t *tenant) acquire(ctx context.Context) error {
	select {
	case t.gate <- struct{}{}:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

func (t *tenant) release() { <-t.gate }

// runBatch applies one compiled batch atomically: run from the current
// committed state with ordered commits, and only on full success swap
// the tenant state and append the journal entry. Any error — deadline,
// task failure, retry exhaustion — leaves state, journal, and seen-set
// exactly as before, so the client can safely retry the same batch ID.
func (t *tenant) runBatch(ctx context.Context, b *Batch, tasks []janus.Task) (*BatchResult, error) {
	if err := t.acquire(ctx); err != nil {
		return nil, err
	}
	defer t.release()

	t.mu.Lock()
	if _, dup := t.seen[b.ID]; dup {
		t.mu.Unlock()
		return nil, errDuplicate
	}
	base := t.st
	t.mu.Unlock()

	start := time.Now()
	final, stats, err := t.runner.RunInOrderCtx(ctx, base, tasks)
	elapsed := time.Since(start)
	t.runNanos.Add(int64(elapsed))
	t.retries.Add(stats.Run.Retries)
	if err != nil {
		return nil, err
	}
	t.commits.Add(stats.Run.Commits)

	t.mu.Lock()
	t.st = final
	t.applied++
	applied := t.applied
	t.journal = append(t.journal, b.ID)
	if n := len(t.journal); n > journalCap {
		// Bound the in-memory journal; the count and digest remain exact.
		t.journal = append(t.journal[:0], t.journal[n-journalCap:]...)
	}
	t.seen[b.ID] = struct{}{}
	digest := rec.FormatDigest(rec.Digest(final))
	t.mu.Unlock()

	t.accepted.Add(1)
	res := &BatchResult{
		ID:        b.ID,
		Tenant:    t.name,
		Tasks:     len(tasks),
		Commits:   stats.Run.Commits,
		Retries:   stats.Run.Retries,
		Digest:    digest,
		Applied:   applied,
		Health:    t.govState().String(),
		ElapsedMS: elapsed.Milliseconds(),
	}
	return res, nil
}

// journalCap bounds the retained applied-ID journal per tenant. The
// seen-set still grows with distinct accepted IDs (exactly-once refusal
// must outlive the journal window); a production deployment would age it
// with a TTL, which the soak's horizons never reach.
const journalCap = 65536

// snapshot reads the tenant's introspection view for /healthz.
func (t *tenant) snapshot() TenantHealth {
	t.mu.Lock()
	applied := t.applied
	journalLen := len(t.journal)
	digest := rec.FormatDigest(rec.Digest(t.st))
	t.mu.Unlock()
	return TenantHealth{
		Health:     t.govState().String(),
		Inflight:   t.inflight.Load(),
		Applied:    applied,
		JournalLen: int64(journalLen),
		Digest:     digest,
		Accepted:   t.accepted.Load(),
		Shed:       t.shed.Load(),
		Failed:     t.failed.Load(),
		Commits:    t.commits.Load(),
		Retries:    t.retries.Load(),
	}
}

// TenantHealth is one tenant's row in the /healthz reply.
type TenantHealth struct {
	Health     string `json:"health"`
	Inflight   int64  `json:"inflight"`
	Applied    int64  `json:"applied"`
	JournalLen int64  `json:"journal_len,omitempty"`
	Digest     string `json:"digest"`
	Accepted   int64  `json:"accepted"`
	Shed       int64  `json:"shed"`
	Failed     int64  `json:"failed"`
	Commits    int64  `json:"commits"`
	Retries    int64  `json:"retries"`
}
