package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/rec"
	"repro/internal/wal"
)

// duplicateError refuses a batch ID that is already applied, carrying
// the original verdict: where the batch landed in the journal and the
// state digest its commit produced. The 409 reply forwards both, so a
// client retrying an acked-then-crashed submission can confirm its
// batch took effect exactly once — across restarts, because the seen
// index is durable.
type duplicateError struct {
	id     string
	seq    uint64
	digest uint64
}

func (e *duplicateError) Error() string {
	return fmt.Sprintf("serve: batch id %q already applied as journal seq %d", e.id, e.seq)
}

// journalError wraps a WAL append failure on the submit path: the batch
// ran but was not journaled, therefore not applied and not acked.
type journalError struct{ err error }

func (e *journalError) Error() string { return e.err.Error() }
func (e *journalError) Unwrap() error { return e.err }

// validateTenantName rejects names that cannot double as a directory
// entry under the data dir (or a flight-dump filename): path
// separators, "..", leading dots, and unprintable or absurdly long
// names. Enforced whether or not durability is on, so a tenant created
// in-memory today can be served durably tomorrow.
func validateTenantName(name string) error {
	if name == "" {
		return fmt.Errorf("tenant required (X-Janus-Tenant header or ?tenant=)")
	}
	if len(name) > 128 {
		return fmt.Errorf("tenant name longer than 128 bytes")
	}
	if name[0] == '.' {
		return fmt.Errorf("tenant name may not start with '.'")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("tenant name may only contain letters, digits, '-', '_', '.'")
		}
	}
	if strings.Contains(name, "..") {
		return fmt.Errorf("tenant name may not contain \"..\"")
	}
	return nil
}

// tenantDir is where one tenant's journal lives.
func (s *Server) tenantDir(name string) string {
	return filepath.Join(s.cfg.DataDir, name)
}

// recoverTenant rebuilds a tenant from its journal directory before it
// serves its first request: open (or create) the WAL, load the newest
// valid snapshot, replay the journal suffix through the sequential
// oracle verifying each record's digest, and rebuild the exactly-once
// seen index. A journal that cannot be recovered honestly (sequence
// gap, digest mismatch, undecodable batch) fails tenant creation — the
// server refuses to serve a state it cannot prove.
func (s *Server) recoverTenant(t *tenant) error {
	l, rcv, err := wal.Recover(s.tenantDir(t.name), wal.Options{
		Policy:        s.cfg.Fsync,
		GroupInterval: s.cfg.FsyncInterval,
		SegmentBytes:  s.cfg.SegmentBytes,
		Hook:          s.cfg.CrashHook,
	})
	if err != nil {
		return fmt.Errorf("serve: recovering tenant %q: %w", t.name, err)
	}
	t.recTruncations = int64(rcv.Truncations)
	t.recBadSnaps = int64(rcv.BadSnapshots)

	if snap := rcv.Snapshot; snap != nil {
		st, derr := rec.DecodeState(snap.State)
		if derr != nil {
			l.Close()
			return fmt.Errorf("serve: tenant %q snapshot state: %w", t.name, derr)
		}
		if got := rec.Digest(st); got != snap.Digest {
			l.Close()
			return fmt.Errorf("serve: tenant %q snapshot digest mismatch: state %s, recorded %s",
				t.name, rec.FormatDigest(got), rec.FormatDigest(snap.Digest))
		}
		t.st = st
		t.applied = int64(snap.Seq)
		// Snapshot seen tables are sorted by seq, so appending preserves
		// journal order for the retention window.
		for _, e := range snap.Seen {
			t.seen[e.ID] = appliedBatch{seq: e.Seq, digest: e.Digest}
			t.seenOrder = append(t.seenOrder, seenAt{id: e.ID, seq: e.Seq})
		}
		t.lastSnap.Store(snap.Seq)
	}

	// Replay the suffix through the sequential oracle. Each record's
	// digest was computed at commit time from the parallel run's final
	// state; sequential replay must land on the same digest (that
	// equivalence is the system's core correctness claim), so a mismatch
	// means the journal does not reproduce the acked state — refuse.
	for _, r := range rcv.Records {
		var b Batch
		if uerr := json.Unmarshal(r.Payload, &b); uerr != nil {
			l.Close()
			return fmt.Errorf("serve: tenant %q journal seq %d: decoding batch: %w", t.name, r.Seq, uerr)
		}
		next, aerr := ApplySequential(t.st, s.cfg.Schema, &b)
		if aerr != nil {
			l.Close()
			return fmt.Errorf("serve: tenant %q journal seq %d: replaying batch %q: %w", t.name, r.Seq, b.ID, aerr)
		}
		if got := rec.Digest(next); got != r.Digest {
			l.Close()
			return fmt.Errorf("serve: tenant %q journal seq %d: replay digest %s, journal recorded %s",
				t.name, r.Seq, rec.FormatDigest(got), rec.FormatDigest(r.Digest))
		}
		t.st = next
		t.applied = int64(r.Seq)
		t.seen[r.ID] = appliedBatch{seq: r.Seq, digest: r.Digest}
		t.seenOrder = append(t.seenOrder, seenAt{id: r.ID, seq: r.Seq})
	}
	// A restart rebuilds exactly the live index, including its bound.
	t.evictSeenLocked()

	// Rebuild the display journal (/journalz) from the seen index in
	// journal order, bounded like the live path bounds it.
	ids := make([]string, 0, len(t.seen))
	for id := range t.seen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return t.seen[ids[i]].seq < t.seen[ids[j]].seq })
	if len(ids) > journalCap {
		ids = ids[len(ids)-journalCap:]
	}
	t.journal = ids
	t.wal = l
	return nil
}

// maybeSnapshot kicks a background snapshot + truncate once enough
// batches have accumulated past the last one. At most one snapshot per
// tenant runs at a time; the append path never waits on it.
func (t *tenant) maybeSnapshot() {
	if t.wal == nil || t.snapEvery <= 0 {
		return
	}
	t.mu.Lock()
	seq := uint64(t.applied)
	t.mu.Unlock()
	if seq < t.lastSnap.Load()+uint64(t.snapEvery) {
		return
	}
	if !t.snapBusy.CompareAndSwap(false, true) {
		return
	}
	t.snapWG.Add(1)
	go func() {
		defer t.snapWG.Done()
		defer t.snapBusy.Store(false)
		if err := t.writeSnapshotNow(); err != nil {
			t.snapErrs.Add(1)
		}
	}()
}

// writeSnapshotNow captures the committed state and seen index and
// publishes them as a snapshot, truncating covered journal segments.
// The state pointer is safe to encode outside the lock: committed
// states are immutable (runBatch swaps the pointer, never mutates).
func (t *tenant) writeSnapshotNow() error {
	t.mu.Lock()
	st := t.st
	seq := uint64(t.applied)
	seen := make([]wal.SeenEntry, 0, len(t.seen))
	for id, ab := range t.seen {
		seen = append(seen, wal.SeenEntry{ID: id, Seq: ab.seq, Digest: ab.digest})
	}
	t.mu.Unlock()
	if seq <= t.lastSnap.Load() {
		return nil
	}
	sort.Slice(seen, func(i, j int) bool { return seen[i].Seq < seen[j].Seq })
	enc, err := rec.EncodeState(st)
	if err != nil {
		return fmt.Errorf("serve: encoding snapshot state: %w", err)
	}
	snap := wal.Snapshot{Seq: seq, Digest: rec.Digest(st), State: enc, Seen: seen}
	if err := t.wal.WriteSnapshot(snap); err != nil {
		return fmt.Errorf("serve: writing snapshot: %w", err)
	}
	t.lastSnap.Store(seq)
	t.snapshots.Add(1)
	return nil
}

// RecoverTenants eagerly opens every tenant directory already present
// under the data dir, so a restarted server proves all its journals at
// boot (and fails loudly) instead of on each tenant's first request.
// Returns the recovered tenant names.
func (s *Server) RecoverTenants() ([]string, error) {
	if s.cfg.DataDir == "" {
		return nil, nil
	}
	entries, err := readTenantDirs(s.cfg.DataDir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, name := range entries {
		if validateTenantName(name) != nil {
			continue // not a tenant dir (stray file, hidden dir)
		}
		t, terr := s.tenantFor(name)
		if terr != nil {
			return names, terr
		}
		if t == nil {
			return names, fmt.Errorf("serve: tenant table full recovering %q", name)
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// readTenantDirs lists the subdirectory names under the data dir; an
// absent data dir is an empty deployment, not an error.
func readTenantDirs(dataDir string) ([]string, error) {
	entries, err := os.ReadDir(dataDir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("serve: scanning data dir: %w", err)
	}
	var names []string
	for _, ent := range entries {
		if ent.IsDir() {
			names = append(names, ent.Name())
		}
	}
	return names, nil
}

// CloseJournals waits for in-flight snapshots and closes every durable
// tenant's journal (a final sync, so a planned shutdown is durable
// under every fsync policy). Call after Drain.
func (s *Server) CloseJournals() error {
	s.mu.Lock()
	ts := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		ts = append(ts, t)
	}
	s.mu.Unlock()
	var firstErr error
	for _, t := range ts {
		if t.wal == nil {
			continue
		}
		t.snapWG.Wait()
		if err := t.wal.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
