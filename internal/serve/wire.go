// Package serve is the JANUS serving layer: a long-running multi-tenant
// HTTP front end over janus.Runner. Clients submit batches of
// transactional tasks as JSON; the server compiles each batch into
// janus tasks over the tenant's shared state, runs it speculatively in
// parallel with ordered commits (so the committed result is exactly the
// batch's sequential order — digest-checkable against the sequential
// oracle), and applies the final state atomically: a batch either
// commits whole or leaves the tenant state untouched.
//
// The robustness surface is the point (see DESIGN.md §12): admission is
// wired to each tenant's persistent health governor (healthy admits a
// full parallel window, degraded shrinks it, tripped serializes or
// sheds), every request carries a deadline into RunInOrderCtx, intake
// is bounded (excess load is shed with typed, retryable 429/503 replies
// carrying Retry-After — never queued without bound), and shutdown
// drains in-flight batches under a deadline with per-tenant flight
// recorders dumped on abnormal exit.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	janus "repro"
	"repro/internal/adt"
	"repro/internal/state"
)

// Schema declares the shared locations a server exposes to its tenants.
// Every tenant starts from the same initial state: each counter at 0,
// each stack empty, each map empty. Ops referencing locations outside
// the schema are rejected at decode time with a 400, before any
// execution.
type Schema struct {
	Counters []string `json:"counters"`
	Stacks   []string `json:"stacks"`
	KVMaps   []string `json:"kvmaps"`
}

// DefaultSchema is the schema a zero Config serves: a few counters for
// reduction/identity patterns, a stack, and a map.
func DefaultSchema() Schema {
	return Schema{
		Counters: []string{"c0", "c1", "c2", "c3", "work"},
		Stacks:   []string{"stk"},
		KVMaps:   []string{"kv"},
	}
}

// locKind classifies a schema location for op validation.
type locKind uint8

const (
	kindNone locKind = iota
	kindCounter
	kindStack
	kindKVMap
)

// index maps each declared location to its kind.
func (s Schema) index() map[string]locKind {
	m := make(map[string]locKind, len(s.Counters)+len(s.Stacks)+len(s.KVMaps))
	for _, c := range s.Counters {
		m[c] = kindCounter
	}
	for _, st := range s.Stacks {
		m[st] = kindStack
	}
	for _, kv := range s.KVMaps {
		m[kv] = kindKVMap
	}
	return m
}

// InitialState builds the schema's initial tenant state: counters zero,
// stacks and maps empty. Oracle clients (the loadgen digest check)
// rebuild the same state to replay accepted batches sequentially.
func InitialState(s Schema) *janus.State {
	st := janus.NewState()
	for _, c := range s.Counters {
		janus.InitCounter(st, janus.Loc(c), 0)
	}
	for _, k := range s.Stacks {
		janus.InitStack(st, janus.Loc(k))
	}
	for _, m := range s.KVMaps {
		janus.InitKVMap(st, janus.Loc(m))
	}
	return st
}

// OpSpec is one shared-state operation inside a task. Op selects the
// operation; which other fields matter depends on it:
//
//	counter: add/sub/store (Delta), load
//	stack:   push (Delta), pop, size
//	kvmap:   put (Key, Val), get/del/has (Key)
//	work:    local spin of Delta units (no location) — models task body
//	         compute between shared accesses
type OpSpec struct {
	Op    string `json:"op"`
	Loc   string `json:"loc,omitempty"`
	Delta int64  `json:"delta,omitempty"`
	Key   string `json:"key,omitempty"`
	Val   string `json:"val,omitempty"`
}

// TaskSpec is one transactional task: its ops run atomically and in
// order inside a single transaction.
type TaskSpec struct {
	Ops []OpSpec `json:"ops"`
}

// Batch is one submit request: a client-chosen idempotency ID, the
// tasks to run as one ordered parallel batch, and an optional deadline.
type Batch struct {
	// ID names the batch for exactly-once accounting: the tenant journal
	// records applied IDs in commit order, and resubmitting an applied ID
	// is refused with 409 — an accepted batch is applied exactly once.
	ID string `json:"id"`
	// Tasks are the batch's transactions; commits follow task order.
	Tasks []TaskSpec `json:"tasks"`
	// DeadlineMS bounds the batch's total service time (queue wait +
	// run) in milliseconds; 0 uses the server default. The deadline
	// propagates into RunInOrderCtx: when it expires the run drains and
	// the reply is a retryable 504 with the tenant state unchanged.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// BatchResult is the success reply.
type BatchResult struct {
	ID      string `json:"id"`
	Tenant  string `json:"tenant"`
	Tasks   int    `json:"tasks"`
	Commits int64  `json:"commits"`
	Retries int64  `json:"retries"`
	// Digest is the FNV-64a digest of the tenant state after this batch
	// (rec.FormatDigest) — the value the sequential oracle must match.
	Digest string `json:"digest"`
	// Applied is the tenant's total applied-batch count including this
	// one; it equals this batch's position in the journal.
	Applied int64 `json:"applied"`
	// Health is the tenant governor's state at reply time.
	Health    string `json:"health"`
	ElapsedMS int64  `json:"elapsed_ms"`
}

// Error codes carried in ErrorReply.Code. Retryable codes ship a
// Retry-After; the rest are permanent for the same request.
const (
	CodeBadRequest     = "bad_request"      // 400: malformed batch
	CodeTenantLimit    = "tenant_limit"     // 429: MaxTenants reached
	CodeOverloaded     = "overloaded"       // 429: per-tenant in-flight cap hit
	CodeTripped        = "tripped"          // 503: governor tripped, shedding
	CodeDraining       = "draining"         // 503: shutdown in progress
	CodeRetryExhausted = "retry_exhausted"  // 503: speculation starved (congestion)
	CodeDeadline       = "deadline"         // 504: batch deadline expired
	CodeCanceled       = "canceled"         // 499: client went away mid-request
	CodeDuplicate      = "duplicate"        // 409: batch ID already applied
	CodeBatchFailed    = "batch_failed"     // 422: a task body failed
	CodeUnknownTenant  = "unknown_tenant"   // 404: introspection on absent tenant
	CodeMethod         = "method_not_allowed" // 405
	CodeJournal        = "journal_error"    // 503: batch ran but could not be journaled; not applied
	CodeRecovery       = "recovery_failed"  // 500: tenant journal unrecoverable; operator required
)

// ErrorReply is every non-2xx body: a typed, machine-readable failure.
// RetryAfterMS is set on retryable codes (overloaded, tripped, draining,
// retry_exhausted, deadline) and mirrors the Retry-After header.
type ErrorReply struct {
	Error        string `json:"error"`
	Code         string `json:"code"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
	// Applied and Digest carry the original verdict on a 409 duplicate:
	// the journal position the batch committed at and the state digest
	// its commit produced. A client whose ack was lost to a crash
	// resubmits and reads its original result here.
	Applied int64  `json:"applied,omitempty"`
	Digest  string `json:"digest,omitempty"`
}

// StatusCanceled is the non-standard 499 (client closed request) used
// when the client disconnects mid-batch; nobody reads it, but access
// logs and tests distinguish it from server-caused failures.
const StatusCanceled = 499

// maxBatchTasks bounds one batch; a request above it is a 400, not a
// resource commitment.
const maxBatchTasks = 4096

// maxTaskOps bounds one task's declared ops the same way.
const maxTaskOps = 4096

// compile validates a batch against the schema and compiles each task
// into a janus.Task. All validation happens here, before admission
// commits any resources: an invalid op anywhere rejects the whole batch.
func compile(sch map[string]locKind, b *Batch) ([]janus.Task, error) {
	if b.ID == "" {
		return nil, fmt.Errorf("batch id required")
	}
	if len(b.Tasks) == 0 {
		return nil, fmt.Errorf("batch has no tasks")
	}
	if len(b.Tasks) > maxBatchTasks {
		return nil, fmt.Errorf("batch has %d tasks, limit %d", len(b.Tasks), maxBatchTasks)
	}
	tasks := make([]janus.Task, len(b.Tasks))
	for ti, ts := range b.Tasks {
		if len(ts.Ops) == 0 {
			return nil, fmt.Errorf("task %d has no ops", ti)
		}
		if len(ts.Ops) > maxTaskOps {
			return nil, fmt.Errorf("task %d has %d ops, limit %d", ti, len(ts.Ops), maxTaskOps)
		}
		ops := ts.Ops
		for oi, op := range ops {
			if err := checkOp(sch, op); err != nil {
				return nil, fmt.Errorf("task %d op %d: %w", ti, oi, err)
			}
		}
		tasks[ti] = func(ex janus.Executor) error {
			for _, op := range ops {
				if err := applyOp(ex, op); err != nil {
					return err
				}
			}
			return nil
		}
	}
	return tasks, nil
}

// checkOp validates one op against the schema without executing it.
func checkOp(sch map[string]locKind, op OpSpec) error {
	if op.Op == "work" {
		if op.Delta < 0 {
			return fmt.Errorf("work units negative")
		}
		return nil
	}
	kind := sch[op.Loc]
	switch op.Op {
	case "add", "sub", "store", "load":
		if kind != kindCounter {
			return fmt.Errorf("op %q needs a counter, %q is not one", op.Op, op.Loc)
		}
	case "push", "pop", "size":
		if kind != kindStack {
			return fmt.Errorf("op %q needs a stack, %q is not one", op.Op, op.Loc)
		}
	case "put", "get", "del", "has":
		if kind != kindKVMap {
			return fmt.Errorf("op %q needs a kvmap, %q is not one", op.Op, op.Loc)
		}
		if op.Key == "" {
			return fmt.Errorf("op %q needs a key", op.Op)
		}
	default:
		return fmt.Errorf("unknown op %q", op.Op)
	}
	return nil
}

// applyOp executes one validated op through the transaction's executor.
// Read results are discarded — the reads still enter the op log and
// participate in conflict detection, which is what batch authors use
// them for.
func applyOp(ex janus.Executor, op OpSpec) error {
	switch op.Op {
	case "add":
		return janus.Counter{L: janus.Loc(op.Loc)}.Add(ex, op.Delta)
	case "sub":
		return janus.Counter{L: janus.Loc(op.Loc)}.Sub(ex, op.Delta)
	case "store":
		return janus.Counter{L: janus.Loc(op.Loc)}.Store(ex, op.Delta)
	case "load":
		_, err := janus.Counter{L: janus.Loc(op.Loc)}.Load(ex)
		return err
	case "push":
		return janus.Stack{L: janus.Loc(op.Loc)}.Push(ex, op.Delta)
	case "pop":
		_, err := janus.Stack{L: janus.Loc(op.Loc)}.Pop(ex)
		return err
	case "size":
		_, err := janus.Stack{L: janus.Loc(op.Loc)}.Size(ex)
		return err
	case "put":
		return janus.KVMap{L: janus.Loc(op.Loc)}.Put(ex, op.Key, op.Val)
	case "get":
		_, _, err := janus.KVMap{L: janus.Loc(op.Loc)}.Get(ex, op.Key)
		return err
	case "del":
		return janus.KVMap{L: janus.Loc(op.Loc)}.Remove(ex, op.Key)
	case "has":
		_, err := janus.KVMap{L: janus.Loc(op.Loc)}.Has(ex, op.Key)
		return err
	case "work":
		adt.LocalWork(ex, op.Delta)
		return nil
	}
	return fmt.Errorf("unknown op %q", op.Op)
}

// ApplySequential replays a batch's tasks in order on st with no
// parallelism — the oracle side of the digest check. It returns the new
// state; st is not mutated. Callers replay accepted batches in journal
// order and compare rec.Digest against /statez.
func ApplySequential(st *janus.State, sch Schema, b *Batch) (*janus.State, error) {
	tasks, err := compile(sch.index(), b)
	if err != nil {
		return nil, err
	}
	return janus.Sequential(st, tasks)
}

// decodeBatch reads and validates a submit body.
func decodeBatch(r *http.Request, maxBody int64) (*Batch, error) {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBody))
	dec.DisallowUnknownFields()
	var b Batch
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("decoding batch: %w", err)
	}
	return &b, nil
}

// stateVal is a tiny helper for tests/introspection: the string form of
// one location's committed value.
func stateVal(st *janus.State, loc string) string {
	v, ok := st.Get(state.Loc(loc))
	if !ok {
		return ""
	}
	return v.String()
}
