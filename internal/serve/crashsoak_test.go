package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/wal"
)

// TestCrashRecoverySoak is the PR's acceptance criterion: for every wal
// crash point, a crash-restart loop under concurrent load must converge
// — after each restart the tenant's journal replays through the
// sequential oracle to exactly the served digest, every batch the
// client saw acknowledged is present with its original verdict (no
// acked-but-lost), and applied counts match distinct journal IDs (no
// double-applied). Batches in flight at the crash (submitted, never
// acked) are resolved by resubmission: 409 if the crash fell in the
// durable-but-unacked window, 200 if the record never hit the journal —
// either way exactly once.
//
// Runs at fsync=always, the policy whose contract (ack ⇒ durable) the
// soak is asserting. Crashes are the in-process poison model
// (chaos.CrashPlan): everything journaled before the point survives on
// disk for the next round's recovery, nothing after exists — the same
// observable semantics as kill -9, and runnable under -race.
func TestCrashRecoverySoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak: skipping under -short")
	}
	for pi, point := range chaos.CrashPoints() {
		t.Run(point, func(t *testing.T) {
			soakOnePoint(t, pi, point)
		})
	}
}

// ack is a client-observed acknowledgement: the verdict the server must
// stand behind forever after.
type ack struct {
	digest  string
	applied int64
}

// soakState is the client-side oracle ledger shared by load goroutines.
type soakState struct {
	mu      sync.Mutex
	specs   map[string]*Batch // every batch ever submitted, by ID
	acked   map[string]ack    // every batch acknowledged with 200
	pending map[string]bool   // submitted, outcome unknown (crash window)
}

func soakOnePoint(t *testing.T, pi int, point string) {
	dir := t.TempDir()
	ledger := &soakState{
		specs:   map[string]*Batch{},
		acked:   map[string]ack{},
		pending: map[string]bool{},
	}
	var idCounter atomic.Int64

	const rounds = 3
	for round := 0; round < rounds; round++ {
		// Escalate the crash point's visit target so successive rounds die
		// at different protocol moments. Append points fire per batch;
		// snapshot/truncate points fire once per snapshot cycle.
		visit := int64(round*9 + 4)
		if point != wal.PointAppendBefore && point != wal.PointAppendAfter {
			visit = int64(round + 1)
		}
		plan := &chaos.CrashPlan{Point: point, Visit: visit}

		cfg := Config{
			Runner:        testRunner(),
			DataDir:       dir,
			Fsync:         wal.FsyncAlways,
			SnapshotEvery: 5,
			SegmentBytes:  1 << 10,
			CrashHook:     plan.Hook(),
		}
		srv := NewServer(cfg)
		if _, err := srv.RecoverTenants(); err != nil {
			t.Fatalf("round %d: boot recovery: %v", round, err)
		}
		ts := httptest.NewServer(srv.Handler())
		c := ts.Client()

		// Convergence check against everything previous rounds
		// established, then resolve the previous crash's in-flight window.
		verifySoak(t, c, ts.URL, srv, ledger)
		resolvePending(t, c, ts.URL, ledger)

		// Concurrent load until the crash fires or the budget is spent.
		var crashed atomic.Bool
		var wg sync.WaitGroup
		for client := 0; client < 3; client++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 20 && !crashed.Load(); i++ {
					id := fmt.Sprintf("p%d-b%d", pi, idCounter.Add(1))
					b := soakBatch(id)
					ledger.mu.Lock()
					ledger.specs[id] = b
					ledger.pending[id] = true
					ledger.mu.Unlock()

					code, res, er := submitRaw(t, c, ts.URL, "soak", b)
					switch {
					case code == http.StatusOK:
						ledger.mu.Lock()
						ledger.acked[id] = ack{digest: res.Digest, applied: res.Applied}
						delete(ledger.pending, id)
						ledger.mu.Unlock()
					case code == http.StatusServiceUnavailable && er.Code == CodeJournal:
						// The simulated process is dead; outcome stays pending.
						crashed.Store(true)
					case code == http.StatusConflict:
						t.Errorf("fresh id %s got 409: %+v", id, er)
						return
					default:
						// Shed/deadline/etc: not applied, not acked — retryable.
					}
				}
			}()
		}
		wg.Wait()

		// Shut the round down. On a crash round the journal is poisoned
		// (no further I/O); on a clean round this is a planned drain.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := srv.Drain(ctx); err != nil {
			t.Fatalf("round %d drain: %v", round, err)
		}
		cancel()
		srv.CloseJournals()
		ts.Close()

		if round < rounds-1 && !plan.Fired() && (point == wal.PointAppendBefore || point == wal.PointAppendAfter) {
			t.Fatalf("round %d: crash plan for %s (visit %d) never fired in %d visits",
				round, point, visit, plan.Visits())
		}
	}

	// Final restart: full convergence, then resolve the last crash's
	// window and check once more.
	srv := NewServer(Config{Runner: testRunner(), DataDir: dir, Fsync: wal.FsyncAlways, SnapshotEvery: 5, SegmentBytes: 1 << 10})
	if _, err := srv.RecoverTenants(); err != nil {
		t.Fatalf("final recovery: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer shutdown(t, srv, ts)
	c := ts.Client()
	verifySoak(t, c, ts.URL, srv, ledger)
	resolvePending(t, c, ts.URL, ledger)
	verifySoak(t, c, ts.URL, srv, ledger)
}

// soakBatch derives a deterministic mixed batch from its ID.
func soakBatch(id string) *Batch {
	h := fnv.New64a()
	h.Write([]byte(id))
	n := int64(h.Sum64()%97) + 1
	return mixedBatch(id, n)
}

// submitRaw posts a batch and decodes whichever reply shape came back.
func submitRaw(t *testing.T, c *http.Client, base, tenant string, b *Batch) (int, BatchResult, ErrorReply) {
	t.Helper()
	var raw json.RawMessage
	code, _ := postBatch(t, c, base, tenant, b, &raw)
	var res BatchResult
	var er ErrorReply
	if code == http.StatusOK {
		if err := json.Unmarshal(raw, &res); err != nil {
			t.Fatalf("decoding 200 body: %v", err)
		}
	} else if err := json.Unmarshal(raw, &er); err != nil {
		t.Fatalf("decoding %d body: %v", code, err)
	}
	return code, res, er
}

// verifySoak asserts the three soak invariants against a live server.
func verifySoak(t *testing.T, c *http.Client, base string, srv *Server, ledger *soakState) {
	t.Helper()
	var st StateReply
	if code := getJSON(t, c, base+"/statez?tenant=soak", &st); code == http.StatusNotFound {
		// No tenant yet (first round, nothing applied before a crash): the
		// ledger must agree nothing was ever acked.
		ledger.mu.Lock()
		n := len(ledger.acked)
		ledger.mu.Unlock()
		if n != 0 {
			t.Fatalf("server lost tenant with %d acked batches", n)
		}
		return
	}
	var j JournalReply
	getJSON(t, c, base+"/journalz?tenant=soak", &j)

	// No double-applied: applied == distinct journal IDs.
	if int64(len(j.IDs)) != st.Applied {
		t.Fatalf("applied %d but journal holds %d ids", st.Applied, len(j.IDs))
	}
	distinct := make(map[string]bool, len(j.IDs))
	for _, id := range j.IDs {
		if distinct[id] {
			t.Fatalf("journal holds id %q twice", id)
		}
		distinct[id] = true
	}

	// Journal == oracle: sequential replay of the journal reproduces the
	// served digest exactly.
	ledger.mu.Lock()
	specs := make(map[string]*Batch, len(ledger.specs))
	for k, v := range ledger.specs {
		specs[k] = v
	}
	acked := make(map[string]ack, len(ledger.acked))
	for k, v := range ledger.acked {
		acked[k] = v
	}
	ledger.mu.Unlock()
	if got := oracleReplay(t, srv.Schema(), specs, j.IDs); got != st.Digest {
		t.Fatalf("journal/oracle divergence: oracle %s, server %s over %d ids", got, st.Digest, len(j.IDs))
	}

	// No acked-but-lost: every acknowledged batch is still applied, and a
	// resubmission returns its original verdict.
	for id, a := range acked {
		if !distinct[id] {
			t.Fatalf("acked batch %q missing from journal after restart", id)
		}
		code, _, er := submitRaw(t, c, base, "soak", specs[id])
		if code != http.StatusConflict || er.Code != CodeDuplicate {
			t.Fatalf("acked batch %q resubmit: %d %+v, want 409 duplicate", id, code, er)
		}
		if er.Digest != a.digest || er.Applied != a.applied {
			t.Fatalf("acked batch %q verdict drifted: acked %+v, now applied=%d digest=%s",
				id, a, er.Applied, er.Digest)
		}
	}
}

// resolvePending resubmits every batch whose outcome the crash ate:
// each must land exactly once — 409 with a verdict if the record
// survived (durable-but-unacked window), 200 if it never journaled.
func resolvePending(t *testing.T, c *http.Client, base string, ledger *soakState) {
	t.Helper()
	ledger.mu.Lock()
	ids := make([]string, 0, len(ledger.pending))
	for id := range ledger.pending {
		ids = append(ids, id)
	}
	ledger.mu.Unlock()
	for _, id := range ids {
		ledger.mu.Lock()
		b := ledger.specs[id]
		ledger.mu.Unlock()
		code, res, er := submitRaw(t, c, base, "soak", b)
		var a ack
		switch code {
		case http.StatusOK:
			a = ack{digest: res.Digest, applied: res.Applied}
		case http.StatusConflict:
			if er.Code != CodeDuplicate || er.Digest == "" || er.Applied <= 0 {
				t.Fatalf("pending %q: 409 without original verdict: %+v", id, er)
			}
			a = ack{digest: er.Digest, applied: er.Applied}
		default:
			t.Fatalf("pending %q: %d %+v, want 200 or 409", id, code, er)
		}
		ledger.mu.Lock()
		ledger.acked[id] = a
		delete(ledger.pending, id)
		ledger.mu.Unlock()
	}
}
