package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	janus "repro"
	"repro/internal/health"
	"repro/internal/rec"
	"repro/internal/wal"
)

// Config parameterizes a Server. The zero value serves DefaultSchema
// with sane production-shaped defaults.
type Config struct {
	// Schema declares the shared locations every tenant starts with;
	// zero means DefaultSchema.
	Schema Schema
	// Runner is the per-tenant runner template. Govern and GovernPersist
	// are forced on (admission control needs the live governor); Trace
	// and Record are replaced with per-tenant instances.
	Runner janus.Config
	// MaxTenants bounds the tenant namespace; a new tenant past the
	// bound is refused with 429 tenant_limit. 0 means 64.
	MaxTenants int
	// MaxInflight is the per-tenant admitted-but-unfinished cap while
	// the tenant's governor is healthy. This is the bounded intake
	// queue: request N+1 is shed with 429, never buffered. 0 means 32.
	MaxInflight int
	// DegradedInflight is the cap while degraded; 0 means
	// max(1, MaxInflight/4).
	DegradedInflight int
	// TrippedShed sheds every submit with 503 while the governor is
	// tripped. Off (default), a tripped tenant still admits one batch at
	// a time — the governor forces serial execution internally, so the
	// tenant makes progress at reduced throughput instead of hard-failing.
	TrippedShed bool
	// RetryBudget is the per-tenant speculation retry budget (the
	// runner's MaxRetries) when the template leaves it unset: a batch
	// whose transactions thrash past it fails fast with a retryable 503
	// instead of burning the tenant's deadline on doomed speculation.
	// 0 means 512 per task.
	RetryBudget int
	// DefaultDeadline bounds a batch that declares none; 0 means 10s.
	// MaxDeadline caps client-declared deadlines; 0 means 60s.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// MaxBody caps a submit body in bytes; 0 means 8 MiB.
	MaxBody int64
	// FlightChunks bounds each tenant's flight-recorder ring (sealed
	// chunks); 0 means 8.
	FlightChunks int
	// TraceLane sizes each tenant trace's per-worker ring; 0 uses the
	// obs default.
	TraceLane int

	// DataDir turns on durability: each tenant journals its applied
	// batches under DataDir/<tenant>/ before acknowledging them, and is
	// recovered crash-consistently from that journal on first use (or
	// eagerly via RecoverTenants). Empty serves in-memory only.
	DataDir string
	// Fsync is the journal's fsync policy (default wal.FsyncAlways:
	// ack ⇒ durable against machine crashes, not just process death).
	Fsync wal.Policy
	// FsyncInterval is the group-commit cadence under wal.FsyncGroup;
	// 0 uses the wal default.
	FsyncInterval time.Duration
	// SegmentBytes bounds journal segment size; 0 uses the wal default.
	SegmentBytes int64
	// SnapshotEvery publishes a state snapshot (and truncates covered
	// journal segments) after this many applied batches per tenant,
	// bounding recovery replay. 0 means 1024; negative disables.
	SnapshotEvery int
	// DedupWindow bounds each tenant's exactly-once seen index to the
	// most recently applied batch IDs: a duplicate of a batch older
	// than the window is no longer refused with its original verdict —
	// it re-applies as new. The bound is what keeps snapshot size,
	// snapshot write amplification, and boot-recovery memory finite in
	// a tenant's lifetime batch count; the window is the documented
	// idempotency retention. 0 means 1<<20 (a million IDs); negative
	// disables the bound (the pre-window unbounded behavior).
	DedupWindow int
	// CrashHook observes wal crash points for chaos testing; nil in
	// production.
	CrashHook wal.Hook
}

func (c Config) withDefaults() Config {
	if len(c.Schema.Counters)+len(c.Schema.Stacks)+len(c.Schema.KVMaps) == 0 {
		c.Schema = DefaultSchema()
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = 64
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 32
	}
	if c.DegradedInflight <= 0 {
		c.DegradedInflight = max(1, c.MaxInflight/4)
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 512
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 10 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 60 * time.Second
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 8 << 20
	}
	if c.FlightChunks <= 0 {
		c.FlightChunks = 8
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 1024
	}
	if c.DedupWindow == 0 {
		c.DedupWindow = 1 << 20
	}
	return c
}

// Server is the multi-tenant serving core: tenant registry, admission
// control, request execution, and drain. It carries no listener — wrap
// Handler in an http.Server (cmd/janus-serve) or httptest (the soak).
type Server struct {
	cfg    Config
	schIdx map[string]locKind

	mu      sync.Mutex
	tenants map[string]*tenant
	// pending holds tenants being created (journal recovery in flight)
	// or whose recovery failed — both outside mu, so one tenant
	// replaying a long journal never stalls another tenant's requests.
	// A failed slot stays here as a cached verdict: repeated submits to
	// a broken tenant return the recovery error without re-replaying
	// the journal (permanent until an operator intervenes and restarts).
	pending map[string]*tenantSlot
	// draining refuses new intake; guarded by mu together with wg.Add so
	// Drain cannot race an admission past the flag.
	draining bool
	wg       sync.WaitGroup

	// process-wide counters
	submits    expvar.Int
	sheds      expvar.Int
	duplicates expvar.Int
	rejected   expvar.Int
}

// NewServer builds a serving core.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:     cfg,
		schIdx:  cfg.Schema.index(),
		tenants: make(map[string]*tenant),
		pending: make(map[string]*tenantSlot),
	}
}

// Schema returns the served schema (for oracle clients).
func (s *Server) Schema() Schema { return s.cfg.Schema }

// tenantSlot is a tenant creation in flight (or failed): ready closes
// once t/err are final. Concurrent first requests for the same tenant
// share one recovery; a failed recovery is cached so later requests
// answer immediately instead of re-replaying a journal that cannot
// recover.
type tenantSlot struct {
	ready chan struct{}
	t     *tenant
	err   error
}

// tenantFor returns the named tenant, creating (and, with a data dir,
// recovering) it on first use. nil with no error means the tenant table
// is full; an error means recovery of the tenant's journal failed.
//
// Creation — which may replay an arbitrarily long journal suffix —
// runs OUTSIDE the server-wide lock: requests for other tenants
// proceed while one tenant recovers, and concurrent requests for the
// recovering tenant wait on its slot rather than redoing the work. A
// tenant whose recovery failed keeps its slot (and its place in the
// tenant table count) with the error cached.
func (s *Server) tenantFor(name string) (*tenant, error) {
	s.mu.Lock()
	if t, ok := s.tenants[name]; ok {
		s.mu.Unlock()
		return t, nil
	}
	if slot, ok := s.pending[name]; ok {
		s.mu.Unlock()
		<-slot.ready
		return slot.t, slot.err
	}
	if len(s.tenants)+len(s.pending) >= s.cfg.MaxTenants {
		s.mu.Unlock()
		return nil, nil
	}
	slot := &tenantSlot{ready: make(chan struct{})}
	s.pending[name] = slot
	s.mu.Unlock()

	t, err := s.newTenant(name)
	slot.t, slot.err = t, err
	s.mu.Lock()
	if err == nil {
		s.tenants[name] = t
		delete(s.pending, name)
	}
	s.mu.Unlock()
	close(slot.ready)
	return t, err
}

// lookup returns an existing tenant or nil (introspection endpoints do
// not create tenants).
func (s *Server) lookup(name string) *tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tenants[name]
}

// admit checks the tenant's governor-driven admission window and claims
// an in-flight slot. It returns the reply code to shed with ("" admits).
//
// The state machine: healthy admits up to MaxInflight concurrent batches
// per tenant; degraded shrinks the window to DegradedInflight (the
// governor has demoted detection — less speculation per tenant keeps the
// fallback from thrashing); tripped serializes to one in-flight batch
// (the governor is already forcing serial execution inside the runner)
// or sheds outright under TrippedShed.
func (s *Server) admit(t *tenant) string {
	limit := int64(s.cfg.MaxInflight)
	var code string
	switch t.govState() {
	case health.Degraded:
		limit = int64(s.cfg.DegradedInflight)
		code = CodeOverloaded
	case health.Tripped:
		if s.cfg.TrippedShed {
			return CodeTripped
		}
		limit = 1
		code = CodeTripped
	default:
		code = CodeOverloaded
	}
	for {
		n := t.inflight.Load()
		if n >= limit {
			return code
		}
		if t.inflight.CompareAndSwap(n, n+1) {
			return ""
		}
	}
}

// retryAfter derives the shed backoff hint from the runner template's
// backoff configuration, doubling with the tenant's consecutive-shed
// streak so sustained overload pushes clients out further (bounded by
// the backoff ceiling).
func (s *Server) retryAfter(t *tenant) time.Duration {
	base := s.cfg.Runner.Backoff.Base
	if base <= 0 {
		base = 25 * time.Millisecond
	}
	ceil := s.cfg.Runner.Backoff.Max
	if ceil <= 0 {
		ceil = 2 * time.Second
	}
	streak := t.shedStreak.Load()
	if streak > 16 {
		streak = 16
	}
	d := base << streak
	if d > ceil || d <= 0 {
		d = ceil
	}
	return d
}

// Handler returns the server's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/submit", s.handleSubmit)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.Handle("/varz", expvar.Handler())
	mux.HandleFunc("/statez", s.handleStatez)
	mux.HandleFunc("/journalz", s.handleJournalz)
	mux.HandleFunc("/timeline", s.handleTimeline)
	return mux
}

// reply writes a JSON body with status.
func reply(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// shed writes a typed retryable rejection with Retry-After.
func (s *Server) shed(w http.ResponseWriter, t *tenant, status int, code, msg string) {
	s.sheds.Add(1)
	var after time.Duration
	if t != nil {
		t.shed.Add(1)
		t.shedStreak.Add(1)
		after = s.retryAfter(t)
	} else {
		after = 100 * time.Millisecond
	}
	w.Header().Set("Retry-After", strconv.FormatInt(int64((after+time.Second-1)/time.Second), 10))
	reply(w, status, ErrorReply{Error: msg, Code: code, RetryAfterMS: after.Milliseconds()})
}

// tenantName resolves the request's tenant (header wins over query).
func tenantName(r *http.Request) string {
	if t := r.Header.Get("X-Janus-Tenant"); t != "" {
		return t
	}
	return r.URL.Query().Get("tenant")
}

// handleSubmit is the intake path: drain gate, decode+validate, tenant
// resolution, admission, deadline propagation, execution, status
// mapping. Every rejection is typed; retryable ones carry Retry-After.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		reply(w, http.StatusMethodNotAllowed, ErrorReply{Error: "POST only", Code: CodeMethod})
		return
	}
	s.submits.Add(1)

	// Drain gate: the flag and the WaitGroup increment are one atomic
	// step under mu, so Drain's wg.Wait covers every admitted request.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.rejected.Add(1)
		s.shed(w, nil, http.StatusServiceUnavailable, CodeDraining, "server draining")
		return
	}
	s.wg.Add(1)
	s.mu.Unlock()
	defer s.wg.Done()

	name := tenantName(r)
	if err := validateTenantName(name); err != nil {
		s.rejected.Add(1)
		reply(w, http.StatusBadRequest, ErrorReply{Error: err.Error(), Code: CodeBadRequest})
		return
	}
	b, err := decodeBatch(r, s.cfg.MaxBody)
	if err != nil {
		s.rejected.Add(1)
		reply(w, http.StatusBadRequest, ErrorReply{Error: err.Error(), Code: CodeBadRequest})
		return
	}
	tasks, err := compile(s.schIdx, b)
	if err != nil {
		s.rejected.Add(1)
		reply(w, http.StatusBadRequest, ErrorReply{Error: err.Error(), Code: CodeBadRequest})
		return
	}
	t, terr := s.tenantFor(name)
	if terr != nil {
		// The tenant's journal exists but cannot be recovered honestly:
		// refuse to serve guessed state. Permanent until an operator
		// intervenes, so no Retry-After.
		s.rejected.Add(1)
		reply(w, http.StatusInternalServerError, ErrorReply{Error: terr.Error(), Code: CodeRecovery})
		return
	}
	if t == nil {
		s.rejected.Add(1)
		s.shed(w, nil, http.StatusTooManyRequests, CodeTenantLimit, "tenant table full")
		return
	}

	if code := s.admit(t); code != "" {
		status := http.StatusTooManyRequests
		msg := "tenant in-flight window full"
		if code == CodeTripped {
			status = http.StatusServiceUnavailable
			msg = "tenant governor tripped; shedding"
		}
		s.shed(w, t, status, code, msg)
		return
	}
	defer t.inflight.Add(-1)
	t.shedStreak.Store(0)

	// Deadline propagation: the batch deadline (clamped) bounds queue
	// wait plus the run, parented on the request context so a client
	// disconnect cancels the run the same way.
	d := s.cfg.DefaultDeadline
	if b.DeadlineMS > 0 {
		d = time.Duration(b.DeadlineMS) * time.Millisecond
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	defer cancel()

	res, err := t.runBatch(ctx, b, tasks)
	if err != nil {
		s.writeRunError(w, r, t, err)
		return
	}
	reply(w, http.StatusOK, res)
}

// writeRunError maps a batch execution error to its typed reply.
func (s *Server) writeRunError(w http.ResponseWriter, r *http.Request, t *tenant, err error) {
	var dup *duplicateError
	switch {
	case errors.As(err, &dup):
		// The original verdict rides along: the seq the batch committed at
		// and the digest it produced, so a client that lost the ack (e.g.
		// to a server crash after the journal append) can confirm its
		// batch applied exactly once.
		s.duplicates.Add(1)
		reply(w, http.StatusConflict, ErrorReply{
			Error: err.Error(), Code: CodeDuplicate,
			Applied: int64(dup.seq), Digest: rec.FormatDigest(dup.digest),
		})
	case errors.Is(err, wal.ErrCrashed):
		// A chaos crash point fired: this process is "dead"; everything
		// journaled before the point survives for the restart.
		t.failed.Add(1)
		reply(w, http.StatusServiceUnavailable, ErrorReply{Error: err.Error(), Code: CodeJournal})
	case errors.As(err, new(*journalError)):
		// The batch ran but could not be journaled: not applied, not
		// acked — the invariant holds and the client may retry.
		t.failed.Add(1)
		s.shed(w, t, http.StatusServiceUnavailable, CodeJournal, err.Error())
	case r.Context().Err() != nil:
		// The client went away (or its own deadline fired): the batch was
		// not applied; nobody is reading, but keep the accounting honest.
		t.failed.Add(1)
		reply(w, StatusCanceled, ErrorReply{Error: "client canceled", Code: CodeCanceled})
	case errors.Is(err, context.DeadlineExceeded):
		t.failed.Add(1)
		s.shed(w, t, http.StatusGatewayTimeout, CodeDeadline, "batch deadline exceeded; state unchanged")
	case errors.Is(err, context.Canceled):
		t.failed.Add(1)
		reply(w, StatusCanceled, ErrorReply{Error: "canceled", Code: CodeCanceled})
	default:
		var rle *janus.RetryLimitError
		if errors.As(err, &rle) {
			// Speculation starved: congestion, not a workload fault.
			t.failed.Add(1)
			s.shed(w, t, http.StatusServiceUnavailable, CodeRetryExhausted,
				fmt.Sprintf("task %d exhausted its retry budget (%d); state unchanged", rle.Task, rle.Retries))
			return
		}
		t.failed.Add(1)
		reply(w, http.StatusUnprocessableEntity, ErrorReply{Error: err.Error(), Code: CodeBatchFailed})
	}
}

// HealthReply is the /healthz body.
type HealthReply struct {
	Status  string                  `json:"status"` // ok | draining
	Tenants map[string]TenantHealth `json:"tenants"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	ts := make(map[string]*tenant, len(s.tenants))
	for n, t := range s.tenants {
		ts[n] = t
	}
	s.mu.Unlock()
	rep := HealthReply{Status: "ok", Tenants: make(map[string]TenantHealth, len(ts))}
	status := http.StatusOK
	if draining {
		rep.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	for n, t := range ts {
		rep.Tenants[n] = t.snapshot()
	}
	reply(w, status, rep)
}

// StateReply is the /statez body: the tenant's committed digest and
// applied count — what the oracle compares against.
type StateReply struct {
	Tenant  string `json:"tenant"`
	Digest  string `json:"digest"`
	Applied int64  `json:"applied"`
	// Values are the committed counter values (string-rendered), a
	// human-readable spot check alongside the digest.
	Values map[string]string `json:"values,omitempty"`
}

func (s *Server) handleStatez(w http.ResponseWriter, r *http.Request) {
	t := s.lookup(tenantName(r))
	if t == nil {
		reply(w, http.StatusNotFound, ErrorReply{Error: "unknown tenant", Code: CodeUnknownTenant})
		return
	}
	snap := t.snapshot()
	t.mu.Lock()
	st := t.st
	t.mu.Unlock()
	vals := make(map[string]string, len(s.cfg.Schema.Counters))
	for _, c := range s.cfg.Schema.Counters {
		vals[c] = stateVal(st, c)
	}
	reply(w, http.StatusOK, StateReply{
		Tenant: t.name, Digest: snap.Digest, Applied: snap.Applied, Values: vals,
	})
}

// JournalReply is the /journalz body: applied batch IDs in commit order
// (bounded to the most recent journalCap entries).
type JournalReply struct {
	Tenant  string   `json:"tenant"`
	Applied int64    `json:"applied"`
	IDs     []string `json:"ids"`
}

func (s *Server) handleJournalz(w http.ResponseWriter, r *http.Request) {
	t := s.lookup(tenantName(r))
	if t == nil {
		reply(w, http.StatusNotFound, ErrorReply{Error: "unknown tenant", Code: CodeUnknownTenant})
		return
	}
	t.mu.Lock()
	ids := append([]string(nil), t.journal...)
	applied := t.applied
	t.mu.Unlock()
	reply(w, http.StatusOK, JournalReply{Tenant: t.name, Applied: applied, IDs: ids})
}

// handleTimeline streams the tenant's protocol timeline as NDJSON,
// reusing the per-tenant obs trace. One shot by default; with ?follow=1
// it long-polls the trace until the client disconnects, emitting only
// events newer than the last cursor.
func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	t := s.lookup(tenantName(r))
	if t == nil {
		reply(w, http.StatusNotFound, ErrorReply{Error: "unknown tenant", Code: CodeUnknownTenant})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	fl, _ := w.(http.Flusher)
	var cursor int64 = -1
	emit := func() {
		evs := t.trace.Events()
		sort.Slice(evs, func(i, j int) bool { return evs[i].When < evs[j].When })
		for _, ev := range evs {
			if ev.When <= cursor {
				continue
			}
			cursor = ev.When
			_ = enc.Encode(map[string]any{
				"type": ev.Type.String(), "when_ns": ev.When, "dur_ns": ev.Dur,
				"worker": ev.Worker, "task": ev.Task, "attempt": ev.Attempt,
				"reason": ev.Reason, "loc": ev.Loc, "detail": ev.Detail,
			})
		}
		if fl != nil {
			fl.Flush()
		}
	}
	emit()
	if r.URL.Query().Get("follow") == "" {
		return
	}
	tick := time.NewTicker(200 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-tick.C:
			emit()
		}
	}
}

// Drain stops intake and waits for every in-flight request to finish,
// bounded by ctx. On a clean drain it returns nil; on timeout it returns
// ctx's error with in-flight work still running (the caller dumps flight
// recorders and exits abnormally).
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain timed out: %w", context.Cause(ctx))
	}
}

// Draining reports whether intake is stopped.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// DumpFlight writes every tenant's flight-recorder ring into dir as
// flight-<tenant>.jtrace, returning the paths written. Called on
// abnormal exit (drain timeout, governor trip at shutdown) so the last
// window of committed traffic survives for janus-replay.
func (s *Server) DumpFlight(dir string) ([]string, error) {
	s.mu.Lock()
	ts := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		ts = append(ts, t)
	}
	s.mu.Unlock()
	var paths []string
	var firstErr error
	for _, t := range ts {
		t.mu.Lock()
		t.rec.Close(t.st)
		t.mu.Unlock()
		p := filepath.Join(dir, "flight-"+t.name+".jtrace")
		if err := t.rec.WriteFile(p); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		paths = append(paths, p)
	}
	return paths, firstErr
}

// Vars returns the server's expvar-shaped snapshot; cmd/janus-serve
// publishes it as "janus.serve".
func (s *Server) Vars() map[string]any {
	s.mu.Lock()
	names := make([]string, 0, len(s.tenants))
	ts := make(map[string]*tenant, len(s.tenants))
	for n, t := range s.tenants {
		names = append(names, n)
		ts[n] = t
	}
	draining := s.draining
	s.mu.Unlock()
	sort.Strings(names)
	tenants := make(map[string]any, len(names))
	for _, n := range names {
		tenants[n] = ts[n].snapshot()
	}
	return map[string]any{
		"draining":   draining,
		"submits":    s.submits.Value(),
		"sheds":      s.sheds.Value(),
		"duplicates": s.duplicates.Value(),
		"rejected":   s.rejected.Value(),
		"tenants":    tenants,
	}
}

// publishedVars guards process-wide expvar registration exactly like
// health.Publish: tests build many servers in one process, and expvar
// panics on duplicate names.
var publishedVars struct {
	sync.Mutex
	servers map[string]*Server
}

// PublishVars exports the server's snapshot under the expvar name
// (default "janus.serve"); re-publishing swaps the source server.
func PublishVars(name string, s *Server) {
	if name == "" {
		name = "janus.serve"
	}
	publishedVars.Lock()
	defer publishedVars.Unlock()
	if publishedVars.servers == nil {
		publishedVars.servers = make(map[string]*Server)
	}
	if _, ok := publishedVars.servers[name]; !ok && expvar.Get(name) == nil {
		n := name
		expvar.Publish(n, expvar.Func(func() any {
			publishedVars.Lock()
			srv := publishedVars.servers[n]
			publishedVars.Unlock()
			if srv == nil {
				return nil
			}
			return srv.Vars()
		}))
	}
	publishedVars.servers[name] = s
}
