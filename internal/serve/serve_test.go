package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	janus "repro"
	"repro/internal/rec"
)

// leakCheck asserts the goroutine count settles back after fn: drained
// servers must not leak workers, watchers, or handler goroutines.
func leakCheck(t *testing.T, fn func()) {
	t.Helper()
	before := runtime.NumGoroutine()
	fn()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// testRunner is a fast runner template for tests.
func testRunner() janus.Config {
	return janus.Config{
		Threads:   4,
		Detection: janus.DetectWriteSet,
		Backoff:   janus.Backoff{Base: time.Millisecond, Max: 8 * time.Millisecond},
	}
}

// postBatch submits a batch and decodes the reply into out (a pointer),
// returning the HTTP status and the raw Retry-After header.
func postBatch(t *testing.T, client *http.Client, base, tenant string, b *Batch, out any) (int, string) {
	t.Helper()
	body, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, base+"/submit?tenant="+tenant, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding reply (status %d): %v", resp.StatusCode, err)
		}
	}
	return resp.StatusCode, resp.Header.Get("Retry-After")
}

func getJSON(t *testing.T, client *http.Client, url string, out any) int {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s (status %d): %v", url, resp.StatusCode, err)
		}
	}
	return resp.StatusCode
}

// addBatch builds a simple counter batch.
func addBatch(id string, tasks int, delta int64) *Batch {
	b := &Batch{ID: id}
	for i := 0; i < tasks; i++ {
		b.Tasks = append(b.Tasks, TaskSpec{Ops: []OpSpec{
			{Op: "add", Loc: "c0", Delta: delta},
		}})
	}
	return b
}

func TestSubmitAndIntrospection(t *testing.T) {
	srv := NewServer(Config{Runner: testRunner()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := ts.Client()

	// A mixed batch touching every ADT kind.
	b := &Batch{ID: "b1", Tasks: []TaskSpec{
		{Ops: []OpSpec{{Op: "add", Loc: "c0", Delta: 5}, {Op: "push", Loc: "stk", Delta: 7}}},
		{Ops: []OpSpec{{Op: "put", Loc: "kv", Key: "k", Val: "v"}, {Op: "work", Delta: 100}}},
		{Ops: []OpSpec{{Op: "sub", Loc: "c0", Delta: 2}, {Op: "get", Loc: "kv", Key: "k"}}},
	}}
	var res BatchResult
	if code, _ := postBatch(t, c, ts.URL, "acme", b, &res); code != http.StatusOK {
		t.Fatalf("submit status = %d, body %+v", code, res)
	}
	if res.Commits != 3 || res.Applied != 1 || res.Digest == "" {
		t.Fatalf("result = %+v", res)
	}

	// The reply digest matches the sequential oracle.
	oracle := InitialState(srv.Schema())
	oracle, err := ApplySequential(oracle, srv.Schema(), b)
	if err != nil {
		t.Fatal(err)
	}
	if want := rec.FormatDigest(rec.Digest(oracle)); res.Digest != want {
		t.Fatalf("digest = %s, oracle %s", res.Digest, want)
	}

	// statez agrees and shows the committed counter.
	var st StateReply
	if code := getJSON(t, c, ts.URL+"/statez?tenant=acme", &st); code != http.StatusOK {
		t.Fatalf("statez status = %d", code)
	}
	if st.Digest != res.Digest || st.Values["c0"] != "3" {
		t.Fatalf("statez = %+v", st)
	}

	// Duplicate ID refused with 409; state unchanged.
	var er ErrorReply
	if code, _ := postBatch(t, c, ts.URL, "acme", b, &er); code != http.StatusConflict || er.Code != CodeDuplicate {
		t.Fatalf("duplicate: status %d, code %q", code, er.Code)
	}

	// journalz lists exactly the applied batch.
	var j JournalReply
	getJSON(t, c, ts.URL+"/journalz?tenant=acme", &j)
	if j.Applied != 1 || len(j.IDs) != 1 || j.IDs[0] != "b1" {
		t.Fatalf("journal = %+v", j)
	}

	// Validation failures are typed 400s and never touch state.
	for _, bad := range []*Batch{
		{ID: "", Tasks: []TaskSpec{{Ops: []OpSpec{{Op: "add", Loc: "c0"}}}}},
		{ID: "x", Tasks: []TaskSpec{{Ops: []OpSpec{{Op: "add", Loc: "nope", Delta: 1}}}}},
		{ID: "y", Tasks: []TaskSpec{{Ops: []OpSpec{{Op: "push", Loc: "c0", Delta: 1}}}}},
		{ID: "z", Tasks: []TaskSpec{{Ops: []OpSpec{{Op: "frob", Loc: "c0"}}}}},
		{ID: "w", Tasks: []TaskSpec{}},
	} {
		var e ErrorReply
		if code, _ := postBatch(t, c, ts.URL, "acme", bad, &e); code != http.StatusBadRequest || e.Code != CodeBadRequest {
			t.Fatalf("bad batch %q: status %d code %q", bad.ID, code, e.Code)
		}
	}

	// Introspection on an unknown tenant is a 404, not a tenant creation.
	if code := getJSON(t, c, ts.URL+"/statez?tenant=ghost", nil); code != http.StatusNotFound {
		t.Fatalf("ghost statez status = %d", code)
	}

	// healthz names the tenant and its governor state.
	var h HealthReply
	getJSON(t, c, ts.URL+"/healthz", &h)
	if h.Status != "ok" || h.Tenants["acme"].Applied != 1 {
		t.Fatalf("healthz = %+v", h)
	}

	// A task-body failure (pop of an empty stack) is a typed 422 and the
	// batch is retryable: the same ID can be resubmitted.
	popBatch := &Batch{ID: "pop1", Tasks: []TaskSpec{{Ops: []OpSpec{{Op: "pop", Loc: "stk"}}}, {Ops: []OpSpec{{Op: "pop", Loc: "stk"}}}}}
	var e ErrorReply
	if code, _ := postBatch(t, c, ts.URL, "acme", popBatch, &e); code != http.StatusUnprocessableEntity || e.Code != CodeBatchFailed {
		t.Fatalf("pop batch: status %d code %q", code, e.Code)
	}
	// One element is on the stack from b1: a single pop succeeds on retry
	// of the same ID (failed batches are not burned).
	okPop := &Batch{ID: "pop1", Tasks: []TaskSpec{{Ops: []OpSpec{{Op: "pop", Loc: "stk"}}}}}
	var res2 BatchResult
	if code, _ := postBatch(t, c, ts.URL, "acme", okPop, &res2); code != http.StatusOK {
		t.Fatalf("pop retry status = %d", code)
	}

	// The timeline endpoint streams NDJSON events for the tenant.
	resp, err := c.Get(ts.URL + "/timeline?tenant=acme")
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var ev map[string]any
		if err := dec.Decode(&ev); err != nil {
			break
		}
		lines++
	}
	resp.Body.Close()
	if lines == 0 {
		t.Fatal("timeline returned no events")
	}
}

func TestTenantIsolationAndLimit(t *testing.T) {
	srv := NewServer(Config{Runner: testRunner(), MaxTenants: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := ts.Client()

	var r1, r2 BatchResult
	postBatch(t, c, ts.URL, "t1", addBatch("a", 2, 10), &r1)
	postBatch(t, c, ts.URL, "t2", addBatch("a", 2, 99), &r2)
	// Same batch ID in different tenants is not a duplicate, and the
	// states are independent.
	var s1, s2 StateReply
	getJSON(t, c, ts.URL+"/statez?tenant=t1", &s1)
	getJSON(t, c, ts.URL+"/statez?tenant=t2", &s2)
	if s1.Values["c0"] != "20" || s2.Values["c0"] != "198" {
		t.Fatalf("isolation broken: t1 c0=%s t2 c0=%s", s1.Values["c0"], s2.Values["c0"])
	}

	// Third tenant is refused with a typed, retryable 429.
	var e ErrorReply
	code, retryAfter := postBatch(t, c, ts.URL, "t3", addBatch("a", 1, 1), &e)
	if code != http.StatusTooManyRequests || e.Code != CodeTenantLimit || retryAfter == "" {
		t.Fatalf("tenant limit: status %d code %q retry-after %q", code, e.Code, retryAfter)
	}
}

// TestOverloadShedsTyped: with a one-slot admission window, concurrent
// slow submits must shed with typed 429s carrying Retry-After — and
// never queue without bound.
func TestOverloadShedsTyped(t *testing.T) {
	srv := NewServer(Config{Runner: testRunner(), MaxInflight: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := ts.Client()

	const clients = 8
	var wg sync.WaitGroup
	var oks, sheds, other int64
	var mu sync.Mutex
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b := &Batch{ID: fmt.Sprintf("slow-%d", i), Tasks: []TaskSpec{
				{Ops: []OpSpec{{Op: "work", Delta: 3_000_000}, {Op: "add", Loc: "c0", Delta: 1}}},
			}}
			var raw json.RawMessage
			code, retryAfter := postBatch(t, c, ts.URL, "load", b, &raw)
			mu.Lock()
			defer mu.Unlock()
			switch code {
			case http.StatusOK:
				oks++
			case http.StatusTooManyRequests:
				var e ErrorReply
				_ = json.Unmarshal(raw, &e)
				if e.Code != CodeOverloaded || e.RetryAfterMS <= 0 || retryAfter == "" {
					t.Errorf("shed reply: code %q retry_after_ms %d header %q", e.Code, e.RetryAfterMS, retryAfter)
				}
				sheds++
			default:
				other++
			}
		}(i)
	}
	wg.Wait()
	if oks == 0 || sheds == 0 || other != 0 {
		t.Fatalf("oks=%d sheds=%d other=%d; want some accepted, some shed, nothing else", oks, sheds, other)
	}
	if got := srv.Vars()["sheds"].(int64); got != sheds {
		t.Errorf("server sheds var = %d, want %d", got, sheds)
	}
}

// TestDeadlinePropagation: a batch that cannot finish inside its
// declared deadline returns a retryable 504 and leaves state unchanged.
func TestDeadlinePropagation(t *testing.T) {
	srv := NewServer(Config{Runner: testRunner()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := ts.Client()

	postBatch(t, c, ts.URL, "dl", addBatch("base", 1, 7), nil)
	var before StateReply
	getJSON(t, c, ts.URL+"/statez?tenant=dl", &before)

	// Each task spins ~far longer than the 20ms deadline.
	b := &Batch{ID: "too-slow", DeadlineMS: 20}
	for i := 0; i < 4; i++ {
		b.Tasks = append(b.Tasks, TaskSpec{Ops: []OpSpec{
			{Op: "work", Delta: 30_000_000}, {Op: "add", Loc: "c0", Delta: 1},
		}})
	}
	var e ErrorReply
	code, retryAfter := postBatch(t, c, ts.URL, "dl", b, &e)
	if code != http.StatusGatewayTimeout || e.Code != CodeDeadline || retryAfter == "" {
		t.Fatalf("deadline reply: status %d code %q retry-after %q", code, e.Code, retryAfter)
	}
	var after StateReply
	getJSON(t, c, ts.URL+"/statez?tenant=dl", &after)
	if after.Digest != before.Digest {
		t.Fatalf("state changed across failed batch: %s -> %s", before.Digest, after.Digest)
	}
}

// TestDrainStopsIntakeAndDumpsFlight: Drain refuses new intake with a
// typed 503, finishes in-flight work, and DumpFlight writes a per-tenant
// flight-recorder artifact.
func TestDrainStopsIntakeAndDumpsFlight(t *testing.T) {
	srv := NewServer(Config{Runner: testRunner()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := ts.Client()

	postBatch(t, c, ts.URL, "d1", addBatch("a", 4, 3), nil)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	var e ErrorReply
	code, retryAfter := postBatch(t, c, ts.URL, "d1", addBatch("b", 1, 1), &e)
	if code != http.StatusServiceUnavailable || e.Code != CodeDraining || retryAfter == "" {
		t.Fatalf("post-drain submit: status %d code %q retry-after %q", code, e.Code, retryAfter)
	}
	var h HealthReply
	if code := getJSON(t, c, ts.URL+"/healthz", &h); code != http.StatusServiceUnavailable || h.Status != "draining" {
		t.Fatalf("draining healthz: status %d body %+v", code, h)
	}

	dir := t.TempDir()
	paths, err := srv.DumpFlight(dir)
	if err != nil {
		t.Fatalf("dump: %v", err)
	}
	if len(paths) != 1 || !strings.HasSuffix(paths[0], "flight-d1.jtrace") {
		t.Fatalf("dump paths = %v", paths)
	}
	fi, err := os.Stat(filepath.Join(dir, "flight-d1.jtrace"))
	if err != nil || fi.Size() == 0 {
		t.Fatalf("flight artifact missing or empty: %v %v", fi, err)
	}
}
