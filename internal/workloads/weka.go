package workloads

import (
	"fmt"

	"repro/internal/adt"
	"repro/internal/state"
)

// Weka rendering constants (Figure 5's colors).
const (
	wekaBackground = "background.darker.darker"
	wekaWhite      = "white"
	wekaBlack      = "black"
)

func wekaPixelLoc(x, y int) state.Loc {
	return state.Loc(fmt.Sprintf("canvas.%d:%d", x, y))
}

// wekaColorReg is the Graphics2D object's current-color register: every
// task calls g.setColor(...) on the one shared Graphics object, the
// write-write traffic that makes write-set detection abort every
// interleaved pair of rendering transactions. All tasks run the same
// setColor sequence with equal arguments, so sequence-based detection
// proves the stores equal (equal-writes).
const wekaColorReg = state.Loc("graphics.color")

// Weka reproduces the GraphVisualizer rendering loop of Figure 5: each
// task draws one graph node — the node's oval in the darkened background
// color, its label in white — and the edges incident to it in black. Both
// endpoint tasks of an edge draw the same line pixels with the same color,
// the equal-writes pattern: write-set detection conflicts on every shared
// pixel, while sequence-based detection proves the stores equal.
func Weka() *Workload {
	return &Workload{
		Name:            "weka",
		Version:         "3.6.4",
		Desc:            "Machine-learning library; Bayesian-network graph rendering",
		Patterns:        []string{"equal-writes"},
		TrainingInput:   "random Bayesian networks: 100 nodes, average degree 5 and 10",
		ProductionInput: "random Bayesian networks: 1000 nodes, average degree 5 and 10",
		Ordered:         false,
		NewState:        wekaState,
		Tasks:           wekaTasks,
		Relaxations:     nil,
		LocalWork:       20000,
	}
}

func wekaState() *state.State {
	// Pixels materialize on first draw.
	st := state.New()
	st.Set(wekaColorReg, state.Str(""))
	return st
}

// wekaNodePos lays nodes on a deterministic grid.
func wekaNodePos(v int) (x, y int) {
	const cols = 40
	return (v % cols) * 12, (v / cols) * 12
}

func wekaTasks(size Size, seed int64) []adt.Task {
	g := jgGraphFor(size, seed) // same Table 6 graph shapes
	w := Weka()
	tasks := make([]adt.Task, g.n)
	for i := 0; i < g.n; i++ {
		v := i
		nbs := g.neighbors[v]
		tasks[i] = func(ex adt.Executor) error {
			x, y := wekaNodePos(v)
			colorReg := adt.StrVar{L: wekaColorReg}
			// g.setColor(this.getBackground().darker().darker())
			if err := colorReg.Store(ex, wekaBackground); err != nil {
				return err
			}
			if _, err := colorReg.Load(ex); err != nil {
				return err
			}
			// Node oval in the darkened background color (private pixels).
			for dx := 0; dx < 3; dx++ {
				for dy := 0; dy < 2; dy++ {
					px := adt.StrVar{L: wekaPixelLoc(x+dx, y+dy)}
					if err := px.Store(ex, wekaBackground); err != nil {
						return err
					}
				}
			}
			// g.setColor(Color.white)
			if err := colorReg.Store(ex, wekaWhite); err != nil {
				return err
			}
			if _, err := colorReg.Load(ex); err != nil {
				return err
			}
			// Label in white (private pixels).
			for dx := 0; dx < 2; dx++ {
				px := adt.StrVar{L: wekaPixelLoc(x+dx, y+2)}
				if err := px.Store(ex, wekaWhite); err != nil {
					return err
				}
			}
			// Edges in black: g.setColor(Color.black) precedes every
			// drawLine call (cf. Figure 5), so the color register's
			// sequence length grows with the node's degree — fixed-length
			// cache keys miss on unseen degrees, while the Kleene-cross
			// abstraction collapses the store/load runs. Both endpoints
			// draw the full line, so the line pixels are written twice
			// with equal values.
			for _, nb := range nbs {
				if err := colorReg.Store(ex, wekaBlack); err != nil {
					return err
				}
				if _, err := colorReg.Load(ex); err != nil {
					return err
				}
				nx, ny := wekaNodePos(nb)
				for _, p := range linePixels(x, y, nx, ny, 6) {
					px := adt.StrVar{L: wekaPixelLoc(p[0], p[1])}
					if err := px.Store(ex, wekaBlack); err != nil {
						return err
					}
				}
			}
			adt.LocalWork(ex, int64(w.LocalWork))
			return nil
		}
	}
	return tasks
}

// linePixels samples up to n points on the segment (x0,y0)–(x1,y1),
// deterministically and symmetrically (both endpoints produce identical
// pixels for the same edge).
func linePixels(x0, y0, x1, y1, n int) [][2]int {
	// Canonicalize the endpoint order so both tasks sample identically.
	if x1 < x0 || (x1 == x0 && y1 < y0) {
		x0, y0, x1, y1 = x1, y1, x0, y0
	}
	out := make([][2]int, 0, n)
	for i := 1; i <= n; i++ {
		px := x0 + (x1-x0)*i/(n+1)
		py := y0 + (y1-y0)*i/(n+1)
		out = append(out, [2]int{px, py})
	}
	return out
}
