package workloads

import (
	"testing"

	"repro/internal/conflict"
	"repro/internal/seqabs"
	"repro/internal/state"
	"repro/internal/stm"
	"repro/internal/train"
)

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 5 {
		t.Fatalf("suite size = %d, want 5", len(all))
	}
	names := map[string]bool{}
	for _, w := range all {
		if w.Name == "" || w.Desc == "" || w.Version == "" {
			t.Errorf("workload %+v missing metadata", w)
		}
		if len(w.Patterns) == 0 {
			t.Errorf("%s: no patterns", w.Name)
		}
		if w.NewState == nil || w.Tasks == nil {
			t.Fatalf("%s: missing constructors", w.Name)
		}
		names[w.Name] = true
		got, err := ByName(w.Name)
		if err != nil || got.Name != w.Name {
			t.Errorf("ByName(%s) = %v, %v", w.Name, got, err)
		}
	}
	if len(names) != 5 {
		t.Errorf("duplicate names: %v", names)
	}
	if _, err := ByName("nope"); err == nil {
		t.Errorf("unknown name must error")
	}
}

func TestTrainingPayloads(t *testing.T) {
	w := JFileSync()
	payloads := w.TrainingPayloads()
	if len(payloads) != 5 {
		t.Fatalf("payloads = %d, want 5 (the paper's training runs)", len(payloads))
	}
	if len(payloads[0]) != 5 || len(payloads[1]) != 10 {
		t.Errorf("Table 6 training list lengths: got %d and %d, want 5 and 10",
			len(payloads[0]), len(payloads[1]))
	}
}

func TestTaskCountsMatchTable6(t *testing.T) {
	cases := []struct {
		w         *Workload
		trainEven int
		trainOdd  int
		prodEven  int
		prodOdd   int
	}{
		{JFileSync(), 5, 10, 100, 25},
		{JGraphT1(), 100, 100, 1000, 1000},
		{JGraphT2(), 100, 100, 1000, 1000},
		{PMD(), 5, 10, 100, 25},
		{Weka(), 100, 100, 1000, 1000},
	}
	for _, c := range cases {
		if got := len(c.w.Tasks(Training, 2)); got != c.trainEven {
			t.Errorf("%s training even = %d, want %d", c.w.Name, got, c.trainEven)
		}
		if got := len(c.w.Tasks(Training, 3)); got != c.trainOdd {
			t.Errorf("%s training odd = %d, want %d", c.w.Name, got, c.trainOdd)
		}
		if got := len(c.w.Tasks(Production, 2)); got != c.prodEven {
			t.Errorf("%s production even = %d, want %d", c.w.Name, got, c.prodEven)
		}
		if got := len(c.w.Tasks(Production, 3)); got != c.prodOdd {
			t.Errorf("%s production odd = %d, want %d", c.w.Name, got, c.prodOdd)
		}
	}
}

func TestTasksDeterministic(t *testing.T) {
	// The same seed must produce identical sequential outcomes (tasks are
	// re-runnable closures over immutable data).
	for _, w := range All() {
		a, err := stm.RunSequential(w.NewState(), w.Tasks(Small, 7))
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		b, err := stm.RunSequential(w.NewState(), w.Tasks(Small, 7))
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if !a.Equal(b) {
			t.Errorf("%s: sequential runs with equal seeds differ", w.Name)
		}
	}
}

// TestParallelSequenceMatchesSequential is the end-to-end serializability
// check: for every workload, a parallel run under trained sequence-based
// detection must produce a final state consistent with the sequential
// baseline on the locations the benchmark's output lives in.
func TestParallelSequenceMatchesSequential(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			tasks := w.Tasks(Small, 7)
			seq, err := stm.RunSequential(w.NewState(), tasks)
			if err != nil {
				t.Fatal(err)
			}
			c, _, err := train.TrainMany(w.NewState(), w.TrainingPayloads()[:2], train.Options{Mode: seqabs.Abstract})
			if err != nil {
				t.Fatal(err)
			}
			det := conflict.NewSequence(c, w.Relaxations)
			par, stats, err := stm.Run(stm.Config{
				Threads: 4,
				// Weka's painting and JGraphT-1's coloring are
				// order-dependent (true of the real benchmarks too):
				// unordered commits realize a different — still correct —
				// serial order than the sequential baseline.
				// Exact-equality checks therefore pin the commit order;
				// TestJGraphT1UnorderedColoringValid covers the
				// unordered case by checking the coloring invariant.
				Ordered:   w.Ordered || w.Name == "weka" || w.Name == "jgrapht1",
				Detector:  det,
				Privatize: stm.PrivatizePersistent,
			}, w.NewState(), tasks)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Commits != int64(len(tasks)) {
				t.Fatalf("commits = %d, want %d", stats.Commits, len(tasks))
			}
			checkOutputs(t, w.Name, seq, par)
		})
	}
}

// TestParallelWriteSetMatchesSequential checks the baseline detector too:
// conservative detection must still be serializable (just slower).
func TestParallelWriteSetMatchesSequential(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			tasks := w.Tasks(Small, 11)
			seq, err := stm.RunSequential(w.NewState(), tasks)
			if err != nil {
				t.Fatal(err)
			}
			par, _, err := stm.Run(stm.Config{
				Threads:   4,
				Ordered:   w.Ordered || w.Name == "weka" || w.Name == "jgrapht1", // see above
				Detector:  conflict.NewWriteSet(),
				Privatize: stm.PrivatizePersistent,
			}, w.NewState(), tasks)
			if err != nil {
				t.Fatal(err)
			}
			checkOutputs(t, w.Name, seq, par)
		})
	}
}

// checkOutputs compares the benchmark's semantically meaningful outputs
// between a sequential and a parallel run. Scratch locations
// (shared-as-local pads, spuriously-read caches) are excluded where the
// relaxation specification declares their final value immaterial.
func checkOutputs(t *testing.T, name string, seq, par *state.State) {
	t.Helper()
	skip := map[state.Loc]bool{}
	if w, err := ByName(name); err == nil && w.Relaxations != nil {
		for l := range w.Relaxations.RAW {
			skip[l] = true
		}
		for l := range w.Relaxations.WAW {
			skip[l] = true
		}
	}
	for _, loc := range seq.Locs() {
		if skip[loc] {
			continue
		}
		want, _ := seq.Get(loc)
		got, ok := par.Get(loc)
		if !ok {
			t.Errorf("%s: %s missing from parallel state", name, loc)
			continue
		}
		if !want.EqualValue(got) {
			t.Errorf("%s: %s = %v, sequential %v", name, loc, got, want)
		}
	}
}

// TestJGraphT1UnorderedColoringValid checks the semantic invariant of the
// out-of-order greedy coloring: every node is colored and no two adjacent
// nodes share a color, under both detectors.
func TestJGraphT1UnorderedColoringValid(t *testing.T) {
	w := JGraphT1()
	g := jgGraphFor(Small, 7)
	tasks := w.Tasks(Small, 7)
	c, _, err := train.TrainMany(w.NewState(), w.TrainingPayloads()[:2], train.Options{Mode: seqabs.Abstract})
	if err != nil {
		t.Fatal(err)
	}
	for _, det := range []conflict.Detector{conflict.NewSequence(c, w.Relaxations), conflict.NewWriteSet()} {
		final, _, err := stm.Run(stm.Config{
			Threads:   4,
			Ordered:   false,
			Detector:  det,
			Privatize: stm.PrivatizePersistent,
		}, w.NewState(), tasks)
		if err != nil {
			t.Fatalf("%s: %v", det.Name(), err)
		}
		colors := make([]int64, g.n)
		for v := 0; v < g.n; v++ {
			val, ok := final.Get(jgColorLoc(v))
			if !ok {
				t.Fatalf("%s: node %d has no color location", det.Name(), v)
			}
			colors[v] = int64(val.(state.Int))
			if colors[v] <= 0 {
				t.Fatalf("%s: node %d uncolored", det.Name(), v)
			}
		}
		for v := 0; v < g.n; v++ {
			for _, nb := range g.neighbors[v] {
				if colors[v] == colors[nb] {
					t.Fatalf("%s: adjacent nodes %d and %d share color %d", det.Name(), v, nb, colors[v])
				}
			}
		}
	}
}

func TestSizeString(t *testing.T) {
	if Training.String() != "training" || Production.String() != "production" || Small.String() != "small" {
		t.Errorf("size strings wrong")
	}
}

func TestGraphGeneration(t *testing.T) {
	g := newGraph(50, 6, rng(3))
	degSum := 0
	for v, nbs := range g.neighbors {
		degSum += len(nbs)
		seen := map[int]bool{}
		for _, nb := range nbs {
			if nb == v {
				t.Fatalf("self loop at %d", v)
			}
			if seen[nb] {
				t.Fatalf("duplicate edge %d-%d", v, nb)
			}
			seen[nb] = true
		}
	}
	if avg := float64(degSum) / 50; avg < 5 || avg > 7 {
		t.Errorf("average degree = %v, want ≈6", avg)
	}
}

func TestLinePixelsSymmetric(t *testing.T) {
	a := linePixels(0, 0, 30, 12, 6)
	b := linePixels(30, 12, 0, 0, 6)
	if len(a) != 6 || len(b) != 6 {
		t.Fatalf("lengths: %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pixels differ at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
