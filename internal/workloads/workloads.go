// Package workloads re-creates the five real-world benchmarks of the
// JANUS evaluation (§7, Tables 5–6) as Go task sets. The original
// benchmarks are large Java applications; what the evaluation measures is
// the precision of conflict detection on the parallelized loops'
// shared-state access patterns, so each workload reproduces exactly the
// access pattern of the corresponding figure in the paper (Figures 1–5)
// against the same ADTs, with calibrated local computation standing in for
// the surrounding application work (see DESIGN.md's substitution table).
//
// | Benchmark | Parallelized loop                     | Patterns (Table 5)              |
// |-----------|---------------------------------------|---------------------------------|
// | JFileSync | directory-pair comparison (Fig 2)     | identity, shared-as-local       |
// | JGraphT-1 | greedy graph coloring (Fig 3)         | shared-as-local, spurious-reads |
// | JGraphT-2 | saturation-degree ordering            | shared-as-local, equal-writes   |
// | PMD       | per-file source analysis (Fig 4)      | shared-as-local, reduction      |
// | Weka      | graph rendering (Fig 5)               | equal-writes                    |
package workloads

import (
	"fmt"
	"math/rand"

	"repro/internal/adt"
	"repro/internal/conflict"
	"repro/internal/state"
)

// Size selects between the training and production inputs of Table 6.
type Size int

// Input sizes.
const (
	Training Size = iota
	Production
	// Small is a reduced production input for fast tests.
	Small
)

// String renders the size.
func (s Size) String() string {
	switch s {
	case Training:
		return "training"
	case Production:
		return "production"
	default:
		return "small"
	}
}

// Workload is one benchmark of the suite.
type Workload struct {
	// Name and Version mirror Table 5.
	Name    string
	Version string
	Desc    string
	// Patterns lists the prevalent commutative patterns (Table 5).
	Patterns []string
	// TrainingInput and ProductionInput describe the Table 6 inputs.
	TrainingInput   string
	ProductionInput string
	// Ordered reports whether the loop requires in-order commits (the
	// greedy coloring algorithm mandates ordered traversal).
	Ordered bool
	// NewState builds the initial shared state.
	NewState func() *state.State
	// Tasks builds the task set for a size and seed. Distinct seeds give
	// the paper's distinct training/production runs.
	Tasks func(size Size, seed int64) []adt.Task
	// Relaxations is the per-benchmark consistency-relaxation
	// specification (§5.3); nil when the benchmark needs none.
	Relaxations *conflict.Relaxations
	// LocalWork is the calibrated per-task computation weight; exposed
	// so ablations can scale it.
	LocalWork int
}

// TrainingPayloads returns the paper's five training runs: the two
// Table 6 training inputs under distinct seeds.
func (w *Workload) TrainingPayloads() [][]adt.Task {
	out := make([][]adt.Task, 0, 5)
	for i := 0; i < 5; i++ {
		out = append(out, w.Tasks(Training, int64(1000+i)))
	}
	return out
}

// All returns the benchmark suite in the paper's presentation order.
func All() []*Workload {
	return []*Workload{
		JFileSync(),
		JGraphT1(),
		JGraphT2(),
		PMD(),
		Weka(),
	}
}

// ByName retrieves a workload.
func ByName(name string) (*Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown benchmark %q", name)
}

// rng returns a deterministic generator for a task set.
func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
