package workloads

import (
	"fmt"

	"repro/internal/adt"
	"repro/internal/conflict"
	"repro/internal/state"
)

// PMD locations.
const (
	pmdFilename   = state.Loc("ctx.sourceCodeFilename")
	pmdFile       = state.Loc("ctx.sourceCodeFile")
	pmdAttributes = state.Loc("ctx.attributes")
	pmdViolations = state.Loc("metrics.violations")
	pmdAnalyzed   = state.Loc("metrics.analyzed")
)

// pmdCounterLabel is the attribute key GenericClassCounterRule stores
// under (Figure 4): every iteration overwrites it with a fresh counter
// object, the near-miss shared-as-local pattern that keeps ctx from being
// privatized.
const pmdCounterLabel = "COUNTER_LABEL"

// PMD reproduces the source-analyzer loop of Figure 4: each task
// overwrites the shared RuleContext's sourceCodeFilename/sourceCodeFile
// fields and the COUNTER attribute before reading them back
// (shared-as-local via the attribute table), analyzes its file, and
// accumulates violation counts (reduction). Write-set detection aborts
// every interleaved pair because all iterations update the same ctx
// fields; §5.3's WAW tolerance — inferable automatically here because the
// loop permits out-of-order execution — suppresses those conflicts.
func PMD() *Workload {
	return &Workload{
		Name:            "pmd",
		Version:         "4.2",
		Desc:            "Java source code analyzer",
		Patterns:        []string{"shared-as-local", "reduction"},
		TrainingInput:   "random Java source-file lists of length 5 and 10",
		ProductionInput: "random Java source-file lists of length 25 and 100",
		Ordered:         false,
		NewState:        pmdState,
		Tasks:           pmdTasks,
		Relaxations: conflict.NewRelaxations(
			nil,
			[]state.Loc{pmdFilename, pmdFile},
		),
		LocalWork: 5000,
	}
}

func pmdState() *state.State {
	st := state.New()
	st.Set(pmdFilename, state.Str(""))
	st.Set(pmdFile, state.Str(""))
	st.Set(pmdAttributes, adt.NewRelValue())
	st.Set(pmdViolations, state.Int(0))
	st.Set(pmdAnalyzed, state.Int(0))
	return st
}

func pmdTasks(size Size, seed int64) []adt.Task {
	var files int
	switch size {
	case Training:
		files = 5
		if seed%2 == 1 {
			files = 10
		}
	case Production:
		files = 100
		if seed%2 == 1 {
			files = 25
		}
	default:
		files = 10
	}
	r := rng(seed)
	w := PMD()
	tasks := make([]adt.Task, files)
	// Production sources are larger than the training ones, so more rule
	// passes touch the context per file (variable-length sequences).
	maxPasses := 4
	if size == Production {
		maxPasses = 8
	}
	for i := 0; i < files; i++ {
		name := fmt.Sprintf("src/com/example/Class%04d.java", i)
		// Deterministic per-file "analysis findings".
		violations := int64(r.Intn(5))
		rulePasses := 2 + r.Intn(maxPasses)
		taskID := i + 1
		tasks[i] = func(ex adt.Executor) error {
			filename := adt.StrVar{L: pmdFilename}
			file := adt.StrVar{L: pmdFile}
			attrs := adt.KVMap{L: pmdAttributes}

			// ctx.sourceCodeFilename = niceFileName; ctx.sourceCodeFile = new File(...)
			if err := filename.Store(ex, name); err != nil {
				return err
			}
			if err := file.Store(ex, "file:"+name); err != nil {
				return err
			}
			// rs.start(ctx): setAttribute(COUNTER_LABEL, new AtomicLong())
			if err := attrs.Put(ex, pmdCounterLabel, fmt.Sprintf("counter-%d", taskID)); err != nil {
				return err
			}
			for pass := 0; pass < rulePasses; pass++ {
				// Rules read the context fields they just set.
				if _, err := filename.Load(ex); err != nil {
					return err
				}
				if _, _, err := attrs.Get(ex, pmdCounterLabel); err != nil {
					return err
				}
				adt.LocalWork(ex, int64(w.LocalWork/rulePasses))
			}
			// rs.end(ctx): the rule removes its COUNTER attribute,
			// restoring the key to absent — so the attribute sequence
			// (put; get×passes; remove) is an identity-to-absent pattern
			// whose commutativity the trained cache proves, at any pass
			// count under the Kleene-cross abstraction.
			if err := attrs.Remove(ex, pmdCounterLabel); err != nil {
				return err
			}
			// Accumulate findings (reduction).
			if violations > 0 {
				if err := (adt.Counter{L: pmdViolations}).Add(ex, violations); err != nil {
					return err
				}
			}
			return (adt.Counter{L: pmdAnalyzed}).Add(ex, 1)
		}
	}
	return tasks
}
