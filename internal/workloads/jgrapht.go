package workloads

import (
	"fmt"
	"math/rand"

	"repro/internal/adt"
	"repro/internal/conflict"
	"repro/internal/state"
)

// JGraphT locations.
const (
	jgMaxColor   = state.Loc("maxColor")
	jgUsedColors = state.Loc("usedColors")
	jgTotalSat   = state.Loc("stats.totalSaturation")
	jgVisited    = state.Loc("visited")
)

func jgColorLoc(v int) state.Loc  { return state.Loc(fmt.Sprintf("color.%d", v)) }
func jgDegreeLoc(v int) state.Loc { return state.Loc(fmt.Sprintf("degree.%d", v)) }
func jgSatLoc(v int) state.Loc    { return state.Loc(fmt.Sprintf("saturation.%d", v)) }
func jgOrderLoc(i int) state.Loc  { return state.Loc(fmt.Sprintf("order.%d", i)) }
func jgHistLoc(bucket int) state.Loc {
	return state.Loc(fmt.Sprintf("histogram.%d", bucket))
}

// graph is a deterministic random simple graph (the Table 6 inputs).
type graph struct {
	n         int
	neighbors [][]int
}

// newGraph builds an Erdős–Rényi-style simple graph with the requested
// average degree.
func newGraph(n, avgDegree int, r *rand.Rand) *graph {
	g := &graph{n: n, neighbors: make([][]int, n)}
	edges := n * avgDegree / 2
	seen := make(map[[2]int]struct{}, edges)
	for len(seen) < edges {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := [2]int{u, v}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		g.neighbors[u] = append(g.neighbors[u], v)
		g.neighbors[v] = append(g.neighbors[v], u)
	}
	return g
}

func jgGraphFor(size Size, seed int64) *graph {
	r := rng(seed)
	var n, deg int
	switch size {
	case Training:
		n = 100
		deg = 5
		if seed%2 == 1 {
			deg = 10
		}
	case Production:
		n = 1000
		deg = 5
		if seed%2 == 1 {
			deg = 10
		}
	default:
		n = 60
		deg = 5
	}
	return newGraph(n, deg, r)
}

// JGraphT1 reproduces the greedy graph-coloring loop of Figure 3: per
// node, the shared usedColors scratch pad is cleared and repopulated from
// the neighbors' colors (shared-as-local), the node's color is chosen and
// written, and maxColor is read and conditionally raised (spurious-reads).
//
// The sequential greedy algorithm fixes a traversal order, but any serial
// order yields a valid coloring, so the loop runs with unordered commits
// (JANUS's out-of-order mode with automatic WAW-dependence inference,
// §5.3); conflict detection still aborts a task whose neighbor was
// colored concurrently, which is what makes this the paper's
// highest-retry benchmark.
func JGraphT1() *Workload {
	return &Workload{
		Name:            "jgrapht1",
		Version:         "0.8.1",
		Desc:            "Greedy graph-coloring algorithm",
		Patterns:        []string{"shared-as-local", "spurious-reads"},
		TrainingInput:   "random simple graphs: 100 nodes, average degree 5 and 10",
		ProductionInput: "random simple graphs: 1000 nodes, average degree 5 and 10",
		Ordered:         false,
		NewState:        jg1State,
		Tasks:           jg1Tasks,
		Relaxations: conflict.NewRelaxations(
			[]state.Loc{jgMaxColor, jgUsedColors},
			[]state.Loc{jgUsedColors},
		),
		LocalWork: 6000,
	}
}

func jg1State() *state.State {
	st := state.New()
	st.Set(jgMaxColor, state.Int(1))
	st.Set(jgUsedColors, adt.NewRelValue())
	// Colors materialize lazily: color.<v> is bound to 0 up front so
	// loads are defined for every node of the largest input.
	for v := 0; v < 1000; v++ {
		st.Set(jgColorLoc(v), state.Int(0))
	}
	return st
}

func jg1Tasks(size Size, seed int64) []adt.Task {
	g := jgGraphFor(size, seed)
	w := JGraphT1()
	tasks := make([]adt.Task, g.n)
	for i := 0; i < g.n; i++ {
		v := i
		nbs := g.neighbors[v]
		tasks[i] = func(ex adt.Executor) error {
			used := adt.BitSet{L: jgUsedColors}
			maxColor := adt.Counter{L: jgMaxColor}
			if err := used.ClearAll(ex); err != nil {
				return err
			}
			for _, nb := range nbs {
				c, err := adt.Counter{L: jgColorLoc(nb)}.Load(ex)
				if err != nil {
					return err
				}
				if c > 0 {
					if err := used.Set(ex, int(c)); err != nil {
						return err
					}
				}
			}
			color := int64(1)
			for {
				taken, err := used.Get(ex, int(color))
				if err != nil {
					return err
				}
				if !taken {
					break
				}
				color++
			}
			if err := (adt.Counter{L: jgColorLoc(v)}).Store(ex, color); err != nil {
				return err
			}
			cur, err := maxColor.Load(ex)
			if err != nil {
				return err
			}
			if color > cur {
				if err := maxColor.Store(ex, color); err != nil {
					return err
				}
			}
			adt.LocalWork(ex, int64(w.LocalWork))
			return nil
		}
	}
	return tasks
}

// JGraphT2 reproduces the saturation-degree node-ordering heuristic
// (largestSaturationFirstOrder): every task makes intensive access to six
// shared containers — per-node degree (read-only), per-node saturation
// accumulators (reduction), a coloring bit set, the output order slots,
// a saturation histogram (reduction), and a global saturation total
// (reduction). The accesses commute under sequence-based detection, but
// the transactions are dominated by shared-state traffic, so the paper
// observes negligible speedup despite very low retry rates.
func JGraphT2() *Workload {
	return &Workload{
		Name:            "jgrapht2",
		Version:         "0.8.1",
		Desc:            "Saturation-degree node-ordering heuristic for graph coloring",
		Patterns:        []string{"shared-as-local", "equal-writes", "reduction"},
		TrainingInput:   "random simple graphs: 100 nodes, average degree 5 and 10",
		ProductionInput: "random simple graphs: 1000 nodes, average degree 5 and 10",
		Ordered:         false,
		NewState:        jg2State,
		Tasks:           jg2Tasks,
		Relaxations:     nil,
		LocalWork:       3000,
	}
}

func jg2State() *state.State {
	st := state.New()
	st.Set(jgTotalSat, state.Int(0))
	st.Set(jgVisited, adt.NewRelValue())
	for v := 0; v < 1000; v++ {
		st.Set(jgDegreeLoc(v), state.Int(0))
		st.Set(jgSatLoc(v), state.Int(0))
		st.Set(jgOrderLoc(v), state.Int(-1))
	}
	for b := 0; b < 32; b++ {
		st.Set(jgHistLoc(b), state.Int(0))
	}
	return st
}

func jg2Tasks(size Size, seed int64) []adt.Task {
	g := jgGraphFor(size, seed)
	w := JGraphT2()
	tasks := make([]adt.Task, g.n)
	for i := 0; i < g.n; i++ {
		v := i
		nbs := g.neighbors[v]
		slot := i
		tasks[i] = func(ex adt.Executor) error {
			// Accumulate this node's contribution to each neighbor's
			// saturation (reduction on shared counters).
			for _, nb := range nbs {
				if err := (adt.Counter{L: jgSatLoc(nb)}).Add(ex, 1); err != nil {
					return err
				}
			}
			// Read-only degree scan.
			var degSum int64
			for _, nb := range nbs {
				d, err := adt.Counter{L: jgDegreeLoc(nb)}.Load(ex)
				if err != nil {
					return err
				}
				degSum += d
			}
			// Mark the node visited (own key of the shared bit set).
			if err := (adt.BitSet{L: jgVisited}).Set(ex, v); err != nil {
				return err
			}
			// Own output slot (disjoint across tasks).
			if err := (adt.Counter{L: jgOrderLoc(slot)}).Store(ex, int64(v)); err != nil {
				return err
			}
			// Histogram and total (reductions on hot shared counters).
			bucket := int(degSum) % 32
			if bucket < 0 {
				bucket = -bucket
			}
			if err := (adt.Counter{L: jgHistLoc(bucket)}).Add(ex, 1); err != nil {
				return err
			}
			if err := (adt.Counter{L: jgTotalSat}).Add(ex, int64(len(nbs))); err != nil {
				return err
			}
			adt.LocalWork(ex, int64(w.LocalWork))
			return nil
		}
	}
	return tasks
}
