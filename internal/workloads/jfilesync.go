package workloads

import (
	"fmt"

	"repro/internal/adt"
	"repro/internal/conflict"
	"repro/internal/state"
)

// JFileSync locations.
const (
	jfsItemsStarted = state.Loc("monitor.itemsStarted")
	jfsItemsWeight  = state.Loc("monitor.itemsWeight")
	jfsRootURISrc   = state.Loc("monitor.rootUriSrc")
	jfsRootURITgt   = state.Loc("monitor.rootUriTgt")
	jfsCanceled     = state.Loc("progress.canceled")
)

// JFileSync reproduces the directory-pair comparison loop of Figure 2:
// each task pushes progress entries onto the shared monitor's
// itemsStarted/itemsWeight stacks, recursively compares files (balanced
// push/pop per recursion level — the identity pattern), overwrites the
// monitor's rootUriSrc/rootUriTgt scratch fields (shared-as-local), and
// polls the shared cancellation flag.
func JFileSync() *Workload {
	return &Workload{
		Name:            "jfilesync",
		Version:         "2.2",
		Desc:            "Utility for synchronizing pairs of directories",
		Patterns:        []string{"identity", "shared-as-local"},
		TrainingInput:   "random directory-pair lists of length 5 and 10",
		ProductionInput: "random directory-pair lists of length 25 and 100",
		Ordered:         false,
		NewState:        jfsState,
		Tasks:           jfsTasks,
		Relaxations: conflict.NewRelaxations(
			nil,
			[]state.Loc{jfsRootURISrc, jfsRootURITgt}, // scratch fields: WAW tolerable
		),
		LocalWork: 5000,
	}
}

func jfsState() *state.State {
	st := state.New()
	st.Set(jfsItemsStarted, state.IntList{})
	st.Set(jfsItemsWeight, state.IntList{})
	st.Set(jfsRootURISrc, state.Str(""))
	st.Set(jfsRootURITgt, state.Str(""))
	st.Set(jfsCanceled, state.Bool(false))
	return st
}

func jfsTasks(size Size, seed int64) []adt.Task {
	var pairs int
	switch size {
	case Training:
		pairs = 5
		if seed%2 == 1 {
			pairs = 10
		}
	case Production:
		pairs = 100
		if seed%2 == 1 {
			pairs = 25
		}
	default:
		pairs = 10
	}
	r := rng(seed)
	w := JFileSync()
	tasks := make([]adt.Task, pairs)
	// Production directory trees run deeper than the training ones —
	// the §5.2 motivation: add–subtract sequences are length-wise
	// proportional to the complexity of the input items, so fixed-length
	// (unabstracted) cache keys miss on them.
	maxSub := 6
	if size == Production {
		maxSub = 12
	}
	for i := 0; i < pairs; i++ {
		// Per-pair shape, fixed up front so retries are deterministic:
		// number of sub-items found under the pair and their weights.
		subItems := 2 + r.Intn(maxSub)
		weights := make([]int64, subItems)
		for j := range weights {
			weights[j] = int64(1 + r.Intn(4))
		}
		src := fmt.Sprintf("/src/dir%04d", i)
		tgt := fmt.Sprintf("/tgt/dir%04d", i)
		tasks[i] = jfsCompareTask(src, tgt, weights, w.LocalWork)
	}
	return tasks
}

// jfsCompareTask is one iteration of the Figure 2 loop.
func jfsCompareTask(src, tgt string, weights []int64, localWork int) adt.Task {
	return func(ex adt.Executor) error {
		started := adt.Stack{L: jfsItemsStarted}
		weight := adt.Stack{L: jfsItemsWeight}
		srcVar := adt.StrVar{L: jfsRootURISrc}
		tgtVar := adt.StrVar{L: jfsRootURITgt}
		canceled := adt.BoolVar{L: jfsCanceled}

		if err := started.Push(ex, 2); err != nil {
			return err
		}
		if err := weight.Push(ex, 1); err != nil {
			return err
		}
		if err := srcVar.Store(ex, src); err != nil {
			return err
		}
		if err := tgtVar.Store(ex, tgt); err != nil {
			return err
		}
		stop, err := canceled.Load(ex)
		if err != nil {
			return err
		}
		if !stop {
			var total int64
			for _, w := range weights {
				total += w
			}
			if err := started.Push(ex, int64(len(weights))); err != nil {
				return err
			}
			if err := weight.Push(ex, total); err != nil {
				return err
			}
			// compareFiles: recursive, making balanced add-remove calls.
			for _, w := range weights {
				if err := started.Push(ex, 1); err != nil {
					return err
				}
				if err := weight.Push(ex, w); err != nil {
					return err
				}
				// The scratch fields are read back deep in the recursion.
				if _, err := srcVar.Load(ex); err != nil {
					return err
				}
				adt.LocalWork(ex, int64(localWork))
				if _, err := weight.Pop(ex); err != nil {
					return err
				}
				if _, err := started.Pop(ex); err != nil {
					return err
				}
			}
			if _, err := weight.Pop(ex); err != nil {
				return err
			}
			if _, err := started.Pop(ex); err != nil {
				return err
			}
		}
		if _, err := weight.Pop(ex); err != nil {
			return err
		}
		if _, err := started.Pop(ex); err != nil {
			return err
		}
		return nil
	}
}
