// The synthetic heavy-transaction driver. The five paper benchmarks are
// all small transactions — a handful of logged operations each — which
// never exercises the streaming-decomposition or compressed-history
// paths. Heavy is the CLI-drivable counterweight: every transaction logs
// a configurable number of operations over a skewable location
// distribution, so janus-bench can profile the large-ops/txn regime
// (`-ops-per-txn`, `-txn-skew`) that BenchmarkDetectLargeTxn and
// BenchmarkHistoryCompressed measure in isolation.

package workloads

import (
	"fmt"

	"repro/internal/adt"
	"repro/internal/state"
)

// HeavyName is the synthetic workload's -workloads selector. It is not
// part of All(): the paper suite stays the five real benchmarks, and
// Heavy needs its knobs, so callers construct it via Heavy rather than
// ByName.
const HeavyName = "heavy"

// heavyLocs is the number of distinct counters heavy transactions spread
// their accesses over.
const heavyLocs = 64

// DefaultHeavyOps is the ops/txn when the knob is zero: an order of
// magnitude past the paper workloads' task bodies.
const DefaultHeavyOps = 64

func heavyLoc(i int) state.Loc { return state.Loc(fmt.Sprintf("h%02d", i)) }

// Heavy builds the heavy-transaction workload: each task executes
// opsPerTxn logged counter operations — balanced add/sub identity pairs
// on locations drawn from a skewable distribution, plus a shared
// reduction — so sequence detection admits concurrent commits that
// write-set detection would serialize, exactly like the paper patterns,
// but at 10–100× the operation count. opsPerTxn <= 0 means
// DefaultHeavyOps. skew biases location choice toward low indices
// (0 = uniform; larger values concentrate the footprint, raising
// signature-overlap and decode rates in compressed-history runs).
func Heavy(opsPerTxn int, skew float64) *Workload {
	if opsPerTxn <= 0 {
		opsPerTxn = DefaultHeavyOps
	}
	return &Workload{
		Name:    HeavyName,
		Version: "synthetic",
		Desc:    fmt.Sprintf("heavy transactions: %d ops/txn, skew %.2f", opsPerTxn, skew),
		Patterns: []string{
			"identity", "reduction",
		},
		TrainingInput:   "16 tasks",
		ProductionInput: "128 tasks",
		NewState:        heavyState,
		Tasks: func(size Size, seed int64) []adt.Task {
			return heavyTasks(size, seed, opsPerTxn, skew)
		},
	}
}

func heavyState() *state.State {
	st := state.New()
	for i := 0; i < heavyLocs; i++ {
		st.Set(heavyLoc(i), state.Int(0))
	}
	st.Set("h.total", state.Int(0))
	return st
}

// heavyPick draws a location index with the configured skew. rand.Zipf
// wants s > 1 and allocates per generator, so a direct power-law warp of
// one uniform draw keeps task-script generation cheap and deterministic:
// skew 0 is uniform, skew 1 roughly halves the effective footprint, and
// larger values concentrate most accesses on a few hot counters.
func heavyPick(u float64, skew float64) int {
	if skew > 0 {
		for i := 0.0; i < skew; i++ {
			u *= u
		}
	}
	return int(u * heavyLocs)
}

func heavyTasks(size Size, seed int64, opsPerTxn int, skew float64) []adt.Task {
	n := 128
	switch size {
	case Training:
		n = 16
	case Small:
		n = 32
	}
	r := rng(seed)
	tasks := make([]adt.Task, 0, n)
	for t := 0; t < n; t++ {
		// Fix the task's op script up front: retries must replay the
		// identical operation sequence, so the closure owns its script
		// rather than drawing from the shared generator at run time.
		pairs := (opsPerTxn - 1) / 2
		script := make([]int, pairs)
		for k := range script {
			script[k] = heavyPick(r.Float64(), skew)
		}
		delta := int64(t + 1)
		tasks = append(tasks, func(ex adt.Executor) error {
			for _, li := range script {
				c := adt.Counter{L: heavyLoc(li)}
				if err := c.Add(ex, delta); err != nil {
					return err
				}
				if err := c.Sub(ex, delta); err != nil {
					return err
				}
			}
			return adt.Counter{L: "h.total"}.Add(ex, delta)
		})
	}
	return tasks
}
