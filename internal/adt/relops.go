package adt

import (
	"fmt"

	"repro/internal/oplog"
	"repro/internal/relation"
	"repro/internal/state"
)

// Relational operations act on state.Rel values: relations over columns
// {"k","v"} with functional dependency k → v, per the §6.1 convention that
// the FD specializes the relation into a function from locations to
// values. These are the abstract states of BitSet, KVMap, IntArray, and
// Canvas.

// DomainCol and RangeCol are the standard columns of ADT relations.
const (
	DomainCol = "k"
	RangeCol  = "v"
)

// NewRelValue returns a fresh, empty ADT relation value.
func NewRelValue() state.Rel {
	return state.Rel{R: relation.New(
		[]string{DomainCol, RangeCol},
		&relation.FD{Domain: []string{DomainCol}, Range: []string{RangeCol}},
	)}
}

// AbsentVal is the observed value a RelGetOp returns for an unbound key.
const AbsentVal = "∅"

func getRel(st *state.State, l state.Loc) (*relation.Relation, error) {
	v, ok := st.Get(l)
	if !ok {
		return nil, fmt.Errorf("adt: unbound location %q", l)
	}
	rv, ok := v.(state.Rel)
	if !ok {
		return nil, fmt.Errorf("adt: location %q holds %T, want Rel", l, v)
	}
	return rv.R, nil
}

func relTuple(key, val string) relation.Tuple {
	return relation.Tuple{DomainCol: key, RangeCol: val}
}

func relPLoc(l state.Loc, key string) oplog.PLoc {
	return oplog.MakePLoc(l, DomainCol+"="+key)
}

// RelPutOp binds Key to Val in the relation at L ("insert" of Table 2).
type RelPutOp struct {
	L   state.Loc
	Key string
	Val string
}

// Apply implements oplog.Op.
func (o RelPutOp) Apply(st *state.State) (state.Value, error) {
	r, err := getRel(st, o.L)
	if err != nil {
		return nil, err
	}
	r.Insert(relTuple(o.Key, o.Val))
	return nil, nil
}

// Accesses implements oplog.Op (InsertFootprint of Table 3: a write of the
// key's subvalue).
func (o RelPutOp) Accesses(*state.State) []oplog.Access {
	return []oplog.Access{{P: relPLoc(o.L, o.Key), Write: true}}
}

// Sym implements oplog.Op. The key is part of the projection location, so
// only the range value is the generalizable argument.
func (o RelPutOp) Sym() oplog.Sym { return oplog.Sym{Kind: KindRelPut, Arg: o.Val} }

// IsRead implements oplog.Op.
func (o RelPutOp) IsRead() bool { return false }

// String implements fmt.Stringer.
func (o RelPutOp) String() string { return fmt.Sprintf("%s[%s]=%s", o.L, o.Key, o.Val) }

// RelRemoveOp unbinds Key in the relation at L ("remove" of Table 2,
// applied to the matching tuple).
type RelRemoveOp struct {
	L   state.Loc
	Key string
}

// Apply implements oplog.Op.
func (o RelRemoveOp) Apply(st *state.State) (state.Value, error) {
	r, err := getRel(st, o.L)
	if err != nil {
		return nil, err
	}
	for _, t := range r.Matching(relTuple(o.Key, "")) {
		r.Remove(t)
	}
	return nil, nil
}

// Accesses implements oplog.Op. Per §6.2, removing an absent tuple reads
// the key (the op observes absence); removing a present one writes it.
func (o RelRemoveOp) Accesses(st *state.State) []oplog.Access {
	p := relPLoc(o.L, o.Key)
	if r, err := getRel(st, o.L); err == nil {
		if len(r.Matching(relTuple(o.Key, ""))) == 0 {
			return []oplog.Access{{P: p, Read: true}}
		}
	}
	return []oplog.Access{{P: p, Write: true}}
}

// Sym implements oplog.Op.
func (o RelRemoveOp) Sym() oplog.Sym { return oplog.Sym{Kind: KindRelRemove} }

// IsRead implements oplog.Op.
func (o RelRemoveOp) IsRead() bool { return false }

// String implements fmt.Stringer.
func (o RelRemoveOp) String() string { return fmt.Sprintf("del %s[%s]", o.L, o.Key) }

// RelGetOp reads the value bound to Key ("select" pinned to the key).
type RelGetOp struct {
	L   state.Loc
	Key string
}

// Apply implements oplog.Op. Absent keys observe AbsentVal.
func (o RelGetOp) Apply(st *state.State) (state.Value, error) {
	r, err := getRel(st, o.L)
	if err != nil {
		return nil, err
	}
	m := r.Matching(relTuple(o.Key, ""))
	if len(m) == 0 {
		return state.Str(AbsentVal), nil
	}
	return state.Str(m[0][RangeCol]), nil
}

// Accesses implements oplog.Op.
func (o RelGetOp) Accesses(*state.State) []oplog.Access {
	return []oplog.Access{{P: relPLoc(o.L, o.Key), Read: true}}
}

// Sym implements oplog.Op.
func (o RelGetOp) Sym() oplog.Sym { return oplog.Sym{Kind: KindRelGet} }

// IsRead implements oplog.Op.
func (o RelGetOp) IsRead() bool { return true }

// String implements fmt.Stringer.
func (o RelGetOp) String() string { return fmt.Sprintf("%s[%s]", o.L, o.Key) }

// RelHasOp reads whether Key is bound.
type RelHasOp struct {
	L   state.Loc
	Key string
}

// Apply implements oplog.Op.
func (o RelHasOp) Apply(st *state.State) (state.Value, error) {
	r, err := getRel(st, o.L)
	if err != nil {
		return nil, err
	}
	return state.Bool(len(r.Matching(relTuple(o.Key, ""))) > 0), nil
}

// Accesses implements oplog.Op.
func (o RelHasOp) Accesses(*state.State) []oplog.Access {
	return []oplog.Access{{P: relPLoc(o.L, o.Key), Read: true}}
}

// Sym implements oplog.Op.
func (o RelHasOp) Sym() oplog.Sym { return oplog.Sym{Kind: KindRelHas} }

// IsRead implements oplog.Op.
func (o RelHasOp) IsRead() bool { return true }

// String implements fmt.Stringer.
func (o RelHasOp) String() string { return fmt.Sprintf("%s.has(%s)", o.L, o.Key) }

// RelClearOp removes every tuple of the relation at L. Its effect on keys
// absent in the pre-state is vacuous, so its footprint is a write of each
// key present at execution time (computed dynamically, like the §6.2
// remove rule).
type RelClearOp struct{ L state.Loc }

// Apply implements oplog.Op.
func (o RelClearOp) Apply(st *state.State) (state.Value, error) {
	r, err := getRel(st, o.L)
	if err != nil {
		return nil, err
	}
	for _, t := range r.Tuples() {
		r.Remove(t)
	}
	return nil, nil
}

// Accesses implements oplog.Op.
func (o RelClearOp) Accesses(st *state.State) []oplog.Access {
	r, err := getRel(st, o.L)
	if err != nil {
		return nil
	}
	var out []oplog.Access
	for _, t := range r.Tuples() {
		out = append(out, oplog.Access{P: relPLoc(o.L, t[DomainCol]), Write: true})
	}
	return out
}

// Sym implements oplog.Op.
func (o RelClearOp) Sym() oplog.Sym { return oplog.Sym{Kind: KindRelClear} }

// IsRead implements oplog.Op.
func (o RelClearOp) IsRead() bool { return false }

// String implements fmt.Stringer.
func (o RelClearOp) String() string { return fmt.Sprintf("%s.clear()", o.L) }
