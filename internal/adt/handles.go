package adt

import (
	"fmt"
	"strconv"

	"repro/internal/state"
)

// This file defines the typed handles through which tasks access shared
// objects. A handle is a value identifying a shared location; its methods
// submit ops to an Executor and decode observed values.

// Counter is a shared integer supporting the accumulate/restore patterns
// of Figures 1–2 (identity, reduction).
type Counter struct{ L state.Loc }

// Add adds n to the counter.
func (c Counter) Add(ex Executor, n int64) error {
	_, err := ex.Exec(NumAddOp{L: c.L, Delta: n})
	return err
}

// Sub subtracts n from the counter.
func (c Counter) Sub(ex Executor, n int64) error { return c.Add(ex, -n) }

// Store overwrites the counter.
func (c Counter) Store(ex Executor, n int64) error {
	_, err := ex.Exec(NumStoreOp{L: c.L, V: n})
	return err
}

// Load reads the counter.
func (c Counter) Load(ex Executor) (int64, error) {
	v, err := ex.Exec(NumLoadOp{L: c.L})
	if err != nil {
		return 0, err
	}
	return int64(v.(state.Int)), nil
}

// StrVar is a shared string variable (the shared-as-local fields of
// Figure 4, e.g. ctx.sourceCodeFilename).
type StrVar struct{ L state.Loc }

// Store overwrites the variable.
func (s StrVar) Store(ex Executor, v string) error {
	_, err := ex.Exec(StrStoreOp{L: s.L, V: v})
	return err
}

// Load reads the variable.
func (s StrVar) Load(ex Executor) (string, error) {
	v, err := ex.Exec(StrLoadOp{L: s.L})
	if err != nil {
		return "", err
	}
	return string(v.(state.Str)), nil
}

// BoolVar is a shared boolean (e.g. progress.isCanceled of Figure 2).
type BoolVar struct{ L state.Loc }

// Store overwrites the variable.
func (b BoolVar) Store(ex Executor, v bool) error {
	_, err := ex.Exec(BoolStoreOp{L: b.L, V: v})
	return err
}

// Load reads the variable.
func (b BoolVar) Load(ex Executor) (bool, error) {
	v, err := ex.Exec(BoolLoadOp{L: b.L})
	if err != nil {
		return false, err
	}
	return bool(v.(state.Bool)), nil
}

// Stack is a shared integer stack (the monitor.itemsStarted /
// monitor.itemsWeight vectors of Figure 2, whose balanced add/remove calls
// exhibit the identity pattern).
type Stack struct{ L state.Loc }

// Push appends v.
func (s Stack) Push(ex Executor, v int64) error {
	_, err := ex.Exec(ListPushOp{L: s.L, V: v})
	return err
}

// Pop removes and returns the top element.
func (s Stack) Pop(ex Executor) (int64, error) {
	v, err := ex.Exec(ListPopOp{L: s.L})
	if err != nil {
		return 0, err
	}
	return int64(v.(state.Int)), nil
}

// Size returns the number of elements.
func (s Stack) Size(ex Executor) (int64, error) {
	v, err := ex.Exec(ListSizeOp{L: s.L})
	if err != nil {
		return 0, err
	}
	return int64(v.(state.Int)), nil
}

// BitSet is a shared bit set with the §6.1 relational abstraction: a
// 2-ary relation mapping integral indices to boolean values (the
// usedColors object of Figure 3).
type BitSet struct{ L state.Loc }

// Set sets bit i.
func (b BitSet) Set(ex Executor, i int) error {
	_, err := ex.Exec(RelPutOp{L: b.L, Key: strconv.Itoa(i), Val: "1"})
	return err
}

// Clear clears bit i.
func (b BitSet) Clear(ex Executor, i int) error {
	_, err := ex.Exec(RelRemoveOp{L: b.L, Key: strconv.Itoa(i)})
	return err
}

// Get reads bit i.
func (b BitSet) Get(ex Executor, i int) (bool, error) {
	v, err := ex.Exec(RelHasOp{L: b.L, Key: strconv.Itoa(i)})
	if err != nil {
		return false, err
	}
	return bool(v.(state.Bool)), nil
}

// ClearAll clears every bit.
func (b BitSet) ClearAll(ex Executor) error {
	_, err := ex.Exec(RelClearOp{L: b.L})
	return err
}

// KVMap is a shared string-keyed map (the RuleContext attribute table of
// Figure 4).
type KVMap struct{ L state.Loc }

// Put binds key to val.
func (m KVMap) Put(ex Executor, key, val string) error {
	_, err := ex.Exec(RelPutOp{L: m.L, Key: key, Val: val})
	return err
}

// Get reads the value bound to key; ok is false for an absent key.
func (m KVMap) Get(ex Executor, key string) (val string, ok bool, err error) {
	v, err := ex.Exec(RelGetOp{L: m.L, Key: key})
	if err != nil {
		return "", false, err
	}
	s := string(v.(state.Str))
	if s == AbsentVal {
		return "", false, nil
	}
	return s, true, nil
}

// Has reports whether key is bound.
func (m KVMap) Has(ex Executor, key string) (bool, error) {
	v, err := ex.Exec(RelHasOp{L: m.L, Key: key})
	if err != nil {
		return false, err
	}
	return bool(v.(state.Bool)), nil
}

// Remove unbinds key.
func (m KVMap) Remove(ex Executor, key string) error {
	_, err := ex.Exec(RelRemoveOp{L: m.L, Key: key})
	return err
}

// IntArray is a shared integer array with relational abstraction
// (the color[] array of Figure 3). Unset indices read as zero.
type IntArray struct{ L state.Loc }

// Set writes a[i] = v.
func (a IntArray) Set(ex Executor, i int, v int64) error {
	_, err := ex.Exec(RelPutOp{L: a.L, Key: strconv.Itoa(i), Val: strconv.FormatInt(v, 10)})
	return err
}

// Get reads a[i] (zero when unset).
func (a IntArray) Get(ex Executor, i int) (int64, error) {
	v, err := ex.Exec(RelGetOp{L: a.L, Key: strconv.Itoa(i)})
	if err != nil {
		return 0, err
	}
	s := string(v.(state.Str))
	if s == AbsentVal {
		return 0, nil
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("adt: array %s[%d] holds %q: %w", a.L, i, s, err)
	}
	return n, nil
}

// Canvas is a shared pixel raster (the Graphics2D object of Figure 5).
// Each pixel is a relational key; drawing writes the pixel's color, so two
// tasks drawing the same color to the same pixel exhibit the equal-writes
// pattern.
type Canvas struct{ L state.Loc }

// DrawPixel paints pixel (x, y) with color.
func (c Canvas) DrawPixel(ex Executor, x, y int, color string) error {
	key := strconv.Itoa(x) + ":" + strconv.Itoa(y)
	_, err := ex.Exec(RelPutOp{L: c.L, Key: key, Val: color})
	return err
}

// ReadPixel reads pixel (x, y)'s color; ok is false for unpainted pixels.
func (c Canvas) ReadPixel(ex Executor, x, y int) (color string, ok bool, err error) {
	key := strconv.Itoa(x) + ":" + strconv.Itoa(y)
	v, err := ex.Exec(RelGetOp{L: c.L, Key: key})
	if err != nil {
		return "", false, err
	}
	s := string(v.(state.Str))
	if s == AbsentVal {
		return "", false, nil
	}
	return s, true, nil
}
