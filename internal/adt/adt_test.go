package adt

import (
	"strings"
	"testing"

	"repro/internal/oplog"
	"repro/internal/state"
)

// directExec applies ops straight to a state and records events, standing
// in for a transaction.
type directExec struct {
	st  *state.State
	log oplog.Log
}

func (d *directExec) Exec(op oplog.Op) (state.Value, error) {
	acc := op.Accesses(d.st)
	v, err := op.Apply(d.st)
	if err != nil {
		return nil, err
	}
	d.log = append(d.log, &oplog.Event{Op: op, Seq: len(d.log), Acc: acc, Observed: v})
	return v, nil
}

func newExec() *directExec {
	st := state.New()
	st.Set("work", state.Int(0))
	st.Set("name", state.Str(""))
	st.Set("flag", state.Bool(false))
	st.Set("stack", state.IntList{})
	st.Set("bits", NewRelValue())
	st.Set("map", NewRelValue())
	st.Set("arr", NewRelValue())
	st.Set("canvas", NewRelValue())
	return &directExec{st: st}
}

func TestCounter(t *testing.T) {
	ex := newExec()
	c := Counter{L: "work"}
	if err := c.Add(ex, 5); err != nil {
		t.Fatal(err)
	}
	if err := c.Sub(ex, 2); err != nil {
		t.Fatal(err)
	}
	v, err := c.Load(ex)
	if err != nil || v != 3 {
		t.Fatalf("Load = %d, %v; want 3", v, err)
	}
	if err := c.Store(ex, 42); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Load(ex); v != 42 {
		t.Fatalf("after Store, Load = %d", v)
	}
	// Sub logs a negative add.
	syms := ex.log.Syms()
	if syms[1].Kind != KindNumAdd || syms[1].Arg != "-2" {
		t.Errorf("Sub sym = %v", syms[1])
	}
}

func TestCounterErrors(t *testing.T) {
	ex := newExec()
	bad := Counter{L: "missing"}
	if err := bad.Add(ex, 1); err == nil {
		t.Errorf("Add on unbound loc must error")
	}
	if _, err := bad.Load(ex); err == nil {
		t.Errorf("Load on unbound loc must error")
	}
	wrong := Counter{L: "name"} // holds Str
	if err := wrong.Add(ex, 1); err == nil || !strings.Contains(err.Error(), "want Int") {
		t.Errorf("type mismatch must error, got %v", err)
	}
}

func TestStrAndBoolVars(t *testing.T) {
	ex := newExec()
	s := StrVar{L: "name"}
	if err := s.Store(ex, "file.go"); err != nil {
		t.Fatal(err)
	}
	if v, err := s.Load(ex); err != nil || v != "file.go" {
		t.Fatalf("Load = %q, %v", v, err)
	}
	b := BoolVar{L: "flag"}
	if err := b.Store(ex, true); err != nil {
		t.Fatal(err)
	}
	if v, err := b.Load(ex); err != nil || !v {
		t.Fatalf("Load = %v, %v", v, err)
	}
	if _, err := (StrVar{L: "work"}).Load(ex); err == nil {
		t.Errorf("Str load of Int loc must error")
	}
	if _, err := (BoolVar{L: "work"}).Load(ex); err == nil {
		t.Errorf("Bool load of Int loc must error")
	}
}

func TestStack(t *testing.T) {
	ex := newExec()
	s := Stack{L: "stack"}
	for _, v := range []int64{10, 20, 30} {
		if err := s.Push(ex, v); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := s.Size(ex); n != 3 {
		t.Fatalf("Size = %d", n)
	}
	if v, err := s.Pop(ex); err != nil || v != 30 {
		t.Fatalf("Pop = %d, %v", v, err)
	}
	if n, _ := s.Size(ex); n != 2 {
		t.Fatalf("Size after pop = %d", n)
	}
	_, _ = s.Pop(ex)
	_, _ = s.Pop(ex)
	if _, err := s.Pop(ex); err == nil {
		t.Errorf("pop from empty stack must error")
	}
}

func TestBitSet(t *testing.T) {
	ex := newExec()
	b := BitSet{L: "bits"}
	if err := b.Set(ex, 3); err != nil {
		t.Fatal(err)
	}
	if got, _ := b.Get(ex, 3); !got {
		t.Errorf("bit 3 must be set")
	}
	if got, _ := b.Get(ex, 4); got {
		t.Errorf("bit 4 must be clear")
	}
	if err := b.Clear(ex, 3); err != nil {
		t.Fatal(err)
	}
	if got, _ := b.Get(ex, 3); got {
		t.Errorf("bit 3 must be cleared")
	}
	_ = b.Set(ex, 1)
	_ = b.Set(ex, 2)
	if err := b.ClearAll(ex); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if got, _ := b.Get(ex, i); got {
			t.Errorf("bit %d must be cleared by ClearAll", i)
		}
	}
}

func TestKVMap(t *testing.T) {
	ex := newExec()
	m := KVMap{L: "map"}
	if err := m.Put(ex, "COUNTER", "7"); err != nil {
		t.Fatal(err)
	}
	v, ok, err := m.Get(ex, "COUNTER")
	if err != nil || !ok || v != "7" {
		t.Fatalf("Get = %q %v %v", v, ok, err)
	}
	if _, ok, _ := m.Get(ex, "absent"); ok {
		t.Errorf("absent key must report !ok")
	}
	if has, _ := m.Has(ex, "COUNTER"); !has {
		t.Errorf("Has must be true")
	}
	if err := m.Remove(ex, "COUNTER"); err != nil {
		t.Fatal(err)
	}
	if has, _ := m.Has(ex, "COUNTER"); has {
		t.Errorf("Has after Remove must be false")
	}
	// Removing an absent key is a read (observes absence), not a write.
	pre := len(ex.log)
	if err := m.Remove(ex, "COUNTER"); err != nil {
		t.Fatal(err)
	}
	e := ex.log[pre]
	if len(e.Acc) != 1 || !e.Acc[0].Read || e.Acc[0].Write {
		t.Errorf("remove-absent access = %+v, want pure read", e.Acc)
	}
}

func TestIntArray(t *testing.T) {
	ex := newExec()
	a := IntArray{L: "arr"}
	if v, err := a.Get(ex, 9); err != nil || v != 0 {
		t.Fatalf("unset index must read 0, got %d, %v", v, err)
	}
	if err := a.Set(ex, 9, -5); err != nil {
		t.Fatal(err)
	}
	if v, _ := a.Get(ex, 9); v != -5 {
		t.Fatalf("Get = %d", v)
	}
}

func TestCanvas(t *testing.T) {
	ex := newExec()
	c := Canvas{L: "canvas"}
	if err := c.DrawPixel(ex, 2, 3, "white"); err != nil {
		t.Fatal(err)
	}
	col, ok, err := c.ReadPixel(ex, 2, 3)
	if err != nil || !ok || col != "white" {
		t.Fatalf("ReadPixel = %q %v %v", col, ok, err)
	}
	if _, ok, _ := c.ReadPixel(ex, 0, 0); ok {
		t.Errorf("unpainted pixel must report !ok")
	}
}

func TestRelOpsOnWrongType(t *testing.T) {
	ex := newExec()
	m := KVMap{L: "work"} // Int location
	if err := m.Put(ex, "k", "v"); err == nil || !strings.Contains(err.Error(), "want Rel") {
		t.Errorf("Put on scalar loc must error, got %v", err)
	}
}

func TestRelClearAccessesListPresentKeys(t *testing.T) {
	ex := newExec()
	b := BitSet{L: "bits"}
	_ = b.Set(ex, 1)
	_ = b.Set(ex, 5)
	op := RelClearOp{L: "bits"}
	acc := op.Accesses(ex.st)
	if len(acc) != 2 {
		t.Fatalf("clear accesses = %v, want 2 writes", acc)
	}
	for _, a := range acc {
		if !a.Write || a.Read {
			t.Errorf("clear access %+v must be a pure write", a)
		}
	}
	// On an empty relation the clear has no footprint.
	_, _ = op.Apply(ex.st)
	if got := op.Accesses(ex.st); len(got) != 0 {
		t.Errorf("clear of empty relation must have empty footprint, got %v", got)
	}
}

func TestOpStringsAndSyms(t *testing.T) {
	cases := []struct {
		op   oplog.Op
		str  string
		kind string
		read bool
	}{
		{NumAddOp{L: "w", Delta: 2}, "w+=2", KindNumAdd, false},
		{NumStoreOp{L: "w", V: 3}, "w=3", KindNumStore, false},
		{NumLoadOp{L: "w"}, "load(w)", KindNumLoad, true},
		{StrStoreOp{L: "s", V: "a"}, `s="a"`, KindStrStore, false},
		{StrLoadOp{L: "s"}, "load(s)", KindStrLoad, true},
		{BoolStoreOp{L: "b", V: true}, "b=true", KindBoolStore, false},
		{BoolLoadOp{L: "b"}, "load(b)", KindBoolLoad, true},
		{ListPushOp{L: "l", V: 4}, "l.push(4)", KindListPush, false},
		{ListPopOp{L: "l"}, "l.pop()", KindListPop, true},
		{ListSizeOp{L: "l"}, "l.size()", KindListSize, true},
		{RelPutOp{L: "r", Key: "1", Val: "x"}, "r[1]=x", KindRelPut, false},
		{RelRemoveOp{L: "r", Key: "1"}, "del r[1]", KindRelRemove, false},
		{RelGetOp{L: "r", Key: "1"}, "r[1]", KindRelGet, true},
		{RelHasOp{L: "r", Key: "1"}, "r.has(1)", KindRelHas, true},
		{RelClearOp{L: "r"}, "r.clear()", KindRelClear, false},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.str {
			t.Errorf("String = %q, want %q", got, c.str)
		}
		if got := c.op.Sym().Kind; got != c.kind {
			t.Errorf("%s: Sym kind = %q, want %q", c.str, got, c.kind)
		}
		if got := c.op.IsRead(); got != c.read {
			t.Errorf("%s: IsRead = %v, want %v", c.str, got, c.read)
		}
	}
}
