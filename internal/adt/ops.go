// Package adt provides the concrete operations and typed shared-object
// handles of the JANUS reproduction. Scalar handles (Counter, StrVar,
// BoolVar) cover memory-level statements; relational handles (BitSet,
// KVMap, IntArray, Canvas, Stack) cover the abstract data types whose
// semantic states are the relations of §6 (a user-provided "representation
// function" in the paper's terms).
//
// Every handle method builds an oplog.Op and submits it to an Executor —
// the transaction during parallel runs (internal/stm) or the profiler
// during training (internal/train). The op carries its own footprint
// computation, so the executor needs no knowledge of operation semantics.
package adt

import (
	"fmt"
	"strconv"
	"sync/atomic"

	"repro/internal/oplog"
	"repro/internal/state"
)

// Executor applies operations; implemented by stm.Tx and train.Profiler.
type Executor interface {
	Exec(op oplog.Op) (state.Value, error)
}

// Task is a unit of parallelizable work: one loop iteration of the
// paper's benchmarks, cast into a closure over an Executor. Tasks must be
// deterministic and re-runnable from scratch (RUNTASK of Figure 7 retries
// aborted tasks), and must route every shared-state access through the
// executor.
type Task func(ex Executor) error

// CostSink is implemented by executors that account a task's local
// (non-shared) computation in virtual time — the discrete-event simulator
// (internal/vtime) and the training profiler — instead of burning CPU.
type CostSink interface {
	AddLocalWork(units int64)
}

// LocalWork performs units of local computation on behalf of a task.
// Under a CostSink executor the units are charged to virtual time; under
// the wall-clock runtime the CPU spins for real, so wall-clock
// measurements on multi-core hosts see genuine parallel work.
func LocalWork(ex Executor, units int64) {
	if sink, ok := ex.(CostSink); ok {
		sink.AddLocalWork(units)
		return
	}
	atomic.AddUint64(&spinSink, spin(units))
}

// spin is deterministic xorshift churn standing in for application
// compute; the result must be consumed to defeat dead-code elimination.
func spin(units int64) uint64 {
	x := uint64(88172645463325252 + units)
	for i := int64(0); i < units; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	return x
}

var spinSink uint64

// Operation kind names. These appear in mined sequences, cache keys, and
// traces; they are part of the package's stable surface.
const (
	KindNumAdd    = "num.add"
	KindNumStore  = "num.store"
	KindNumLoad   = "num.load"
	KindStrStore  = "str.store"
	KindStrLoad   = "str.load"
	KindBoolStore = "bool.store"
	KindBoolLoad  = "bool.load"
	KindListPush  = "list.push"
	KindListPop   = "list.pop"
	KindListSize  = "list.size"
	KindRelPut    = "rel.put"
	KindRelRemove = "rel.remove"
	KindRelGet    = "rel.get"
	KindRelHas    = "rel.has"
	KindRelClear  = "rel.clear"
)

// --- Numeric scalar ops ---

// NumAddOp adds Delta to the integer at L (a read-modify-write).
type NumAddOp struct {
	L     state.Loc
	Delta int64
}

// Apply implements oplog.Op.
func (o NumAddOp) Apply(st *state.State) (state.Value, error) {
	v, err := getInt(st, o.L)
	if err != nil {
		return nil, err
	}
	st.Set(o.L, state.Int(v+o.Delta))
	return nil, nil
}

// Accesses implements oplog.Op.
func (o NumAddOp) Accesses(*state.State) []oplog.Access {
	return []oplog.Access{{P: oplog.MakePLoc(o.L, ""), Read: true, Write: true}}
}

// Sym implements oplog.Op.
func (o NumAddOp) Sym() oplog.Sym {
	return oplog.Sym{Kind: KindNumAdd, Arg: strconv.FormatInt(o.Delta, 10)}
}

// IsRead implements oplog.Op: the added-to value does not flow to the task.
func (o NumAddOp) IsRead() bool { return false }

// String implements fmt.Stringer.
func (o NumAddOp) String() string { return fmt.Sprintf("%s+=%d", o.L, o.Delta) }

// NumStoreOp overwrites the integer at L.
type NumStoreOp struct {
	L state.Loc
	V int64
}

// Apply implements oplog.Op.
func (o NumStoreOp) Apply(st *state.State) (state.Value, error) {
	st.Set(o.L, state.Int(o.V))
	return nil, nil
}

// Accesses implements oplog.Op.
func (o NumStoreOp) Accesses(*state.State) []oplog.Access {
	return []oplog.Access{{P: oplog.MakePLoc(o.L, ""), Write: true}}
}

// Sym implements oplog.Op.
func (o NumStoreOp) Sym() oplog.Sym {
	return oplog.Sym{Kind: KindNumStore, Arg: strconv.FormatInt(o.V, 10)}
}

// IsRead implements oplog.Op.
func (o NumStoreOp) IsRead() bool { return false }

// String implements fmt.Stringer.
func (o NumStoreOp) String() string { return fmt.Sprintf("%s=%d", o.L, o.V) }

// NumLoadOp reads the integer at L.
type NumLoadOp struct{ L state.Loc }

// Apply implements oplog.Op.
func (o NumLoadOp) Apply(st *state.State) (state.Value, error) {
	v, err := getInt(st, o.L)
	if err != nil {
		return nil, err
	}
	return state.Int(v), nil
}

// Accesses implements oplog.Op.
func (o NumLoadOp) Accesses(*state.State) []oplog.Access {
	return []oplog.Access{{P: oplog.MakePLoc(o.L, ""), Read: true}}
}

// Sym implements oplog.Op.
func (o NumLoadOp) Sym() oplog.Sym { return oplog.Sym{Kind: KindNumLoad} }

// IsRead implements oplog.Op.
func (o NumLoadOp) IsRead() bool { return true }

// String implements fmt.Stringer.
func (o NumLoadOp) String() string { return fmt.Sprintf("load(%s)", o.L) }

// --- String scalar ops ---

// StrStoreOp overwrites the string at L.
type StrStoreOp struct {
	L state.Loc
	V string
}

// Apply implements oplog.Op.
func (o StrStoreOp) Apply(st *state.State) (state.Value, error) {
	st.Set(o.L, state.Str(o.V))
	return nil, nil
}

// Accesses implements oplog.Op.
func (o StrStoreOp) Accesses(*state.State) []oplog.Access {
	return []oplog.Access{{P: oplog.MakePLoc(o.L, ""), Write: true}}
}

// Sym implements oplog.Op.
func (o StrStoreOp) Sym() oplog.Sym { return oplog.Sym{Kind: KindStrStore, Arg: o.V} }

// IsRead implements oplog.Op.
func (o StrStoreOp) IsRead() bool { return false }

// String implements fmt.Stringer.
func (o StrStoreOp) String() string { return fmt.Sprintf("%s=%q", o.L, o.V) }

// StrLoadOp reads the string at L.
type StrLoadOp struct{ L state.Loc }

// Apply implements oplog.Op.
func (o StrLoadOp) Apply(st *state.State) (state.Value, error) {
	v, ok := st.Get(o.L)
	if !ok {
		return nil, fmt.Errorf("adt: unbound location %q", o.L)
	}
	s, ok := v.(state.Str)
	if !ok {
		return nil, fmt.Errorf("adt: location %q holds %T, want Str", o.L, v)
	}
	return s, nil
}

// Accesses implements oplog.Op.
func (o StrLoadOp) Accesses(*state.State) []oplog.Access {
	return []oplog.Access{{P: oplog.MakePLoc(o.L, ""), Read: true}}
}

// Sym implements oplog.Op.
func (o StrLoadOp) Sym() oplog.Sym { return oplog.Sym{Kind: KindStrLoad} }

// IsRead implements oplog.Op.
func (o StrLoadOp) IsRead() bool { return true }

// String implements fmt.Stringer.
func (o StrLoadOp) String() string { return fmt.Sprintf("load(%s)", o.L) }

// --- Boolean scalar ops ---

// BoolStoreOp overwrites the boolean at L.
type BoolStoreOp struct {
	L state.Loc
	V bool
}

// Apply implements oplog.Op.
func (o BoolStoreOp) Apply(st *state.State) (state.Value, error) {
	st.Set(o.L, state.Bool(o.V))
	return nil, nil
}

// Accesses implements oplog.Op.
func (o BoolStoreOp) Accesses(*state.State) []oplog.Access {
	return []oplog.Access{{P: oplog.MakePLoc(o.L, ""), Write: true}}
}

// Sym implements oplog.Op.
func (o BoolStoreOp) Sym() oplog.Sym {
	return oplog.Sym{Kind: KindBoolStore, Arg: strconv.FormatBool(o.V)}
}

// IsRead implements oplog.Op.
func (o BoolStoreOp) IsRead() bool { return false }

// String implements fmt.Stringer.
func (o BoolStoreOp) String() string { return fmt.Sprintf("%s=%t", o.L, o.V) }

// BoolLoadOp reads the boolean at L.
type BoolLoadOp struct{ L state.Loc }

// Apply implements oplog.Op.
func (o BoolLoadOp) Apply(st *state.State) (state.Value, error) {
	v, ok := st.Get(o.L)
	if !ok {
		return nil, fmt.Errorf("adt: unbound location %q", o.L)
	}
	b, ok := v.(state.Bool)
	if !ok {
		return nil, fmt.Errorf("adt: location %q holds %T, want Bool", o.L, v)
	}
	return b, nil
}

// Accesses implements oplog.Op.
func (o BoolLoadOp) Accesses(*state.State) []oplog.Access {
	return []oplog.Access{{P: oplog.MakePLoc(o.L, ""), Read: true}}
}

// Sym implements oplog.Op.
func (o BoolLoadOp) Sym() oplog.Sym { return oplog.Sym{Kind: KindBoolLoad} }

// IsRead implements oplog.Op.
func (o BoolLoadOp) IsRead() bool { return true }

// String implements fmt.Stringer.
func (o BoolLoadOp) String() string { return fmt.Sprintf("load(%s)", o.L) }

// --- List (stack) ops ---

// ListPushOp appends V to the integer list at L.
type ListPushOp struct {
	L state.Loc
	V int64
}

// Apply implements oplog.Op.
func (o ListPushOp) Apply(st *state.State) (state.Value, error) {
	l, err := getList(st, o.L)
	if err != nil {
		return nil, err
	}
	st.Set(o.L, append(append(state.IntList(nil), l...), o.V))
	return nil, nil
}

// Accesses implements oplog.Op: structural update — read and write of the
// whole list value.
func (o ListPushOp) Accesses(*state.State) []oplog.Access {
	return []oplog.Access{{P: oplog.MakePLoc(o.L, ""), Read: true, Write: true}}
}

// Sym implements oplog.Op.
func (o ListPushOp) Sym() oplog.Sym {
	return oplog.Sym{Kind: KindListPush, Arg: strconv.FormatInt(o.V, 10)}
}

// IsRead implements oplog.Op.
func (o ListPushOp) IsRead() bool { return false }

// String implements fmt.Stringer.
func (o ListPushOp) String() string { return fmt.Sprintf("%s.push(%d)", o.L, o.V) }

// ListPopOp removes and returns the last element of the list at L.
type ListPopOp struct{ L state.Loc }

// Apply implements oplog.Op.
func (o ListPopOp) Apply(st *state.State) (state.Value, error) {
	l, err := getList(st, o.L)
	if err != nil {
		return nil, err
	}
	if len(l) == 0 {
		return nil, fmt.Errorf("adt: pop from empty list %q", o.L)
	}
	top := l[len(l)-1]
	st.Set(o.L, append(state.IntList(nil), l[:len(l)-1]...))
	return state.Int(top), nil
}

// Accesses implements oplog.Op.
func (o ListPopOp) Accesses(*state.State) []oplog.Access {
	return []oplog.Access{{P: oplog.MakePLoc(o.L, ""), Read: true, Write: true}}
}

// Sym implements oplog.Op.
func (o ListPopOp) Sym() oplog.Sym { return oplog.Sym{Kind: KindListPop} }

// IsRead implements oplog.Op: the popped value flows to the task.
func (o ListPopOp) IsRead() bool { return true }

// String implements fmt.Stringer.
func (o ListPopOp) String() string { return fmt.Sprintf("%s.pop()", o.L) }

// ListSizeOp reads the length of the list at L.
type ListSizeOp struct{ L state.Loc }

// Apply implements oplog.Op.
func (o ListSizeOp) Apply(st *state.State) (state.Value, error) {
	l, err := getList(st, o.L)
	if err != nil {
		return nil, err
	}
	return state.Int(len(l)), nil
}

// Accesses implements oplog.Op.
func (o ListSizeOp) Accesses(*state.State) []oplog.Access {
	return []oplog.Access{{P: oplog.MakePLoc(o.L, ""), Read: true}}
}

// Sym implements oplog.Op.
func (o ListSizeOp) Sym() oplog.Sym { return oplog.Sym{Kind: KindListSize} }

// IsRead implements oplog.Op.
func (o ListSizeOp) IsRead() bool { return true }

// String implements fmt.Stringer.
func (o ListSizeOp) String() string { return fmt.Sprintf("%s.size()", o.L) }

func getInt(st *state.State, l state.Loc) (int64, error) {
	v, ok := st.Get(l)
	if !ok {
		return 0, fmt.Errorf("adt: unbound location %q", l)
	}
	iv, ok := v.(state.Int)
	if !ok {
		return 0, fmt.Errorf("adt: location %q holds %T, want Int", l, v)
	}
	return int64(iv), nil
}

func getList(st *state.State, l state.Loc) (state.IntList, error) {
	v, ok := st.Get(l)
	if !ok {
		return nil, fmt.Errorf("adt: unbound location %q", l)
	}
	lv, ok := v.(state.IntList)
	if !ok {
		return nil, fmt.Errorf("adt: location %q holds %T, want IntList", l, v)
	}
	return lv, nil
}
