// Quickstart: the paper's Figure 1 program.
//
// A collection of items is processed in a loop; pending work is
// accumulated into a shared counter and removed again when an item's
// processing succeeds. Most iterations therefore act as the identity on
// the shared state — yet classical write-set conflict detection aborts
// every interleaved pair of iterations, serializing the loop. JANUS's
// sequence-based detection learns from a short training run that the
// add/subtract sequences commute, and runs the loop in parallel with no
// aborts.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

const items = 64

// weightOf is the per-item work estimate of Figure 1.
func weightOf(item int) int64 { return int64(item%7 + 1) }

// processItem is a pure function; its success decides whether the item's
// weight is removed from the pending-work counter. The sleep stands in
// for per-item I/O (file comparison, network), which also lets iterations
// overlap in time even on a single-core host.
func processItem(item int) bool {
	time.Sleep(300 * time.Microsecond)
	return item%16 != 0 // most items succeed
}

func makeTask(work janus.Counter, item int) janus.Task {
	return func(ex janus.Executor) error {
		// work += weightOf(item)
		if err := work.Add(ex, weightOf(item)); err != nil {
			return err
		}
		if processItem(item) {
			// Item processed successfully: restore the pending work.
			return work.Sub(ex, weightOf(item))
		}
		return nil
	}
}

func main() {
	st := janus.NewState()
	work := janus.InitCounter(st, "work", 0)

	var tasks []janus.Task
	for i := 0; i < items; i++ {
		tasks = append(tasks, makeTask(work, i))
	}

	// Sequential baseline.
	seqFinal, err := janus.Sequential(st, tasks)
	if err != nil {
		log.Fatal(err)
	}

	// Train on a small prefix of the workload (single-threaded, no
	// synchronization), then run everything in parallel.
	runner := janus.New(janus.Config{Threads: 8, Detection: janus.DetectSequence})
	if err := runner.Train(st, tasks[:8]); err != nil {
		log.Fatal(err)
	}
	parFinal, stats, err := runner.RunOutOfOrder(st, tasks)
	if err != nil {
		log.Fatal(err)
	}

	// The write-set baseline aborts interleaved iterations.
	baseline := janus.New(janus.Config{Threads: 8, Detection: janus.DetectWriteSet})
	_, wsStats, err := baseline.RunOutOfOrder(st, tasks)
	if err != nil {
		log.Fatal(err)
	}

	seqWork, _ := seqFinal.Get("work")
	parWork, _ := parFinal.Get("work")
	fmt.Printf("pending work: sequential=%v parallel=%v (must agree)\n", seqWork, parWork)
	fmt.Printf("sequence-based detection: %d commits, %d retries\n",
		stats.Run.Commits, stats.Run.Retries)
	fmt.Printf("write-set detection:      %d commits, %d retries\n",
		wsStats.Run.Commits, wsStats.Run.Retries)
	fmt.Printf("cache: %d entries, %d hits, %d misses\n",
		runner.CacheStats().Entries, runner.CacheStats().Hits, runner.CacheStats().Misses)
	if !seqWork.EqualValue(parWork) {
		log.Fatal("parallel result diverged from sequential")
	}
}
