// Render: the Weka GraphVisualizer pattern (paper Figure 5).
//
// Tasks render one graph node each onto a single shared Graphics surface:
// every task sets the shared current-color register (background, white,
// black) and paints pixels. Node bodies are private, but edges are drawn
// by both endpoint tasks — same pixels, same color — and every task writes
// the same values to the color register: the equal-writes pattern.
// Write-set detection aborts any interleaved pair; sequence-based
// detection proves the stores equal and lets rendering proceed in
// parallel. This example also demonstrates shipping a trained
// specification (SaveSpec/LoadSpec) instead of retraining in production.
//
// Run with: go run ./examples/render
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"repro"
)

const (
	nodes = 80
	cols  = 10
	bg    = "darkgray"
	white = "white"
	black = "black"
)

func pixelLoc(x, y int) janus.Loc { return janus.Loc(fmt.Sprintf("px.%d:%d", x, y)) }

func nodePos(v int) (int, int) { return (v % cols) * 10, (v / cols) * 10 }

func renderTask(colorReg janus.StrVar, v int, neighbors []int) janus.Task {
	return func(ex janus.Executor) error {
		x, y := nodePos(v)
		setColor := func(c string) error {
			if err := colorReg.Store(ex, c); err != nil {
				return err
			}
			_, err := colorReg.Load(ex)
			return err
		}
		paint := func(px, py int, c string) error {
			return janus.StrVar{L: pixelLoc(px, py)}.Store(ex, c)
		}
		// Node oval.
		if err := setColor(bg); err != nil {
			return err
		}
		for dx := 0; dx < 3; dx++ {
			if err := paint(x+dx, y, bg); err != nil {
				return err
			}
		}
		// Label.
		if err := setColor(white); err != nil {
			return err
		}
		if err := paint(x, y+1, white); err != nil {
			return err
		}
		// Edges: both endpoints draw the same midpoint pixels in black.
		for _, nb := range neighbors {
			if err := setColor(black); err != nil {
				return err
			}
			nx, ny := nodePos(nb)
			a, b := v, nb
			if b < a {
				a, b = b, a
			}
			ax, ay := nodePos(a)
			bx, by := nodePos(b)
			_ = nx
			_ = ny
			for i := 1; i <= 3; i++ {
				px := ax + (bx-ax)*i/4
				py := ay + (by-ay)*i/4
				if err := paint(px, py, black); err != nil {
					return err
				}
			}
		}
		time.Sleep(200 * time.Microsecond) // rasterization work
		return nil
	}
}

func main() {
	st := janus.NewState()
	colorReg := janus.InitStrVar(st, "graphics.color", "")

	neighbors := make([][]int, nodes)
	for v := 0; v < nodes; v++ {
		for _, d := range []int{1, cols} { // grid edges
			if v+d < nodes {
				neighbors[v] = append(neighbors[v], v+d)
				neighbors[v+d] = append(neighbors[v+d], v)
			}
		}
	}
	var tasks []janus.Task
	for v := 0; v < nodes; v++ {
		tasks = append(tasks, renderTask(colorReg, v, neighbors[v]))
	}

	// Train once, ship the spec, load it into a fresh production runner.
	trainer := janus.New(janus.Config{})
	if err := trainer.Train(st, tasks[:8]); err != nil {
		log.Fatal(err)
	}
	var spec bytes.Buffer
	if err := trainer.SaveSpec(&spec); err != nil {
		log.Fatal(err)
	}
	// LearnOnline covers what the short training prefix missed (corner
	// and border nodes have different degrees, so their color-register
	// sequences have unseen shapes): the runner proves and caches those
	// conditions at first sight instead of falling back to write-set.
	prod := janus.New(janus.Config{Threads: 8, LearnOnline: true})
	if err := prod.LoadSpec(bytes.NewReader(spec.Bytes())); err != nil {
		log.Fatal(err)
	}

	final, stats, err := prod.RunOutOfOrder(st, tasks)
	if err != nil {
		log.Fatal(err)
	}
	baseline := janus.New(janus.Config{Threads: 8, Detection: janus.DetectWriteSet})
	_, wsStats, err := baseline.RunOutOfOrder(st, tasks)
	if err != nil {
		log.Fatal(err)
	}

	painted := 0
	for _, loc := range final.Locs() {
		if len(loc) > 3 && loc[:3] == "px." {
			painted++
		}
	}
	fmt.Printf("rendered %d nodes, %d pixels painted\n", nodes, painted)
	fmt.Printf("spec: %d entries after shipping + online learning\n", prod.CacheStats().Entries)
	fmt.Printf("sequence-based: %d retries; write-set: %d retries\n",
		stats.Run.Retries, wsStats.Run.Retries)
}
