// Codescan: the PMD pattern (paper Figure 4).
//
// A source-code analyzer iterates over files. Every iteration overwrites
// the shared RuleContext's sourceCodeFilename/sourceCodeFile fields and
// installs a per-rule COUNTER attribute, reads them back while rules run,
// removes the attribute, and accumulates findings into shared counters.
// Write-set detection aborts every interleaved pair (all iterations write
// the same ctx fields); JANUS tolerates the scratch fields' WAW conflicts
// (§5.3) and proves the attribute and counter sequences commutative.
//
// Run with: go run ./examples/codescan
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro"
)

var sources = func() []string {
	var out []string
	for i := 0; i < 48; i++ {
		out = append(out, fmt.Sprintf("src/service/Handler%02d.java", i))
	}
	return out
}()

func analyze(name string) int64 {
	time.Sleep(250 * time.Microsecond)     // rule evaluation
	return int64(strings.Count(name, "4")) // "violations"
}

func scanTask(filename, file janus.StrVar, attrs janus.KVMap, violations, analyzed janus.Counter, name string, id int) janus.Task {
	return func(ex janus.Executor) error {
		if err := filename.Store(ex, name); err != nil {
			return err
		}
		if err := file.Store(ex, "file:"+name); err != nil {
			return err
		}
		if err := attrs.Put(ex, "COUNTER", fmt.Sprintf("rule-counter-%d", id)); err != nil {
			return err
		}
		for pass := 0; pass < 3; pass++ {
			if _, err := filename.Load(ex); err != nil {
				return err
			}
			if _, _, err := attrs.Get(ex, "COUNTER"); err != nil {
				return err
			}
		}
		found := analyze(name)
		if err := attrs.Remove(ex, "COUNTER"); err != nil {
			return err
		}
		if found > 0 {
			if err := violations.Add(ex, found); err != nil {
				return err
			}
		}
		return analyzed.Add(ex, 1)
	}
}

func main() {
	st := janus.NewState()
	filename := janus.InitStrVar(st, "ctx.sourceCodeFilename", "")
	file := janus.InitStrVar(st, "ctx.sourceCodeFile", "")
	attrs := janus.InitKVMap(st, "ctx.attributes")
	violations := janus.InitCounter(st, "metrics.violations", 0)
	analyzed := janus.InitCounter(st, "metrics.analyzed", 0)

	var tasks []janus.Task
	for i, name := range sources {
		tasks = append(tasks, scanTask(filename, file, attrs, violations, analyzed, name, i))
	}

	relax := janus.NewRelaxations(nil, []janus.Loc{"ctx.sourceCodeFilename", "ctx.sourceCodeFile"})
	runner := janus.New(janus.Config{Threads: 8, Relax: relax})
	if err := runner.Train(st, tasks[:6]); err != nil {
		log.Fatal(err)
	}
	final, stats, err := runner.RunOutOfOrder(st, tasks)
	if err != nil {
		log.Fatal(err)
	}
	baseline := janus.New(janus.Config{Threads: 8, Detection: janus.DetectWriteSet})
	_, wsStats, err := baseline.RunOutOfOrder(st, tasks)
	if err != nil {
		log.Fatal(err)
	}

	an, _ := final.Get("metrics.analyzed")
	vi, _ := final.Get("metrics.violations")
	fmt.Printf("analyzed %v files, %v violations\n", an, vi)
	fmt.Printf("sequence-based: %d retries; write-set: %d retries\n",
		stats.Run.Retries, wsStats.Run.Retries)
	for i, rep := range runner.TrainingReports() {
		fmt.Printf("training run %d: %s\n", i+1, rep)
	}
}
