// Filesync: the JFileSync pattern (paper Figure 2).
//
// A directory-synchronization loop processes pairs of directories. Each
// iteration pushes progress entries onto shared monitor stacks
// (itemsStarted, itemsWeight), recursively compares files with balanced
// push/pop bookkeeping (the identity pattern), scribbles on the monitor's
// rootUriSrc/rootUriTgt scratch fields (shared-as-local), and polls a
// shared cancellation flag. The balanced sequences restore the monitor,
// so iterations commute — but only sequence-wide reasoning can see that.
//
// Run with: go run ./examples/filesync
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

type dirPair struct {
	src, tgt string
	files    []int64 // per-file weights discovered under the pair
}

func comparePair(started, weight janus.Stack, src, tgt janus.StrVar, canceled janus.BoolVar, p dirPair) janus.Task {
	return func(ex janus.Executor) error {
		if err := started.Push(ex, 2); err != nil {
			return err
		}
		if err := weight.Push(ex, 1); err != nil {
			return err
		}
		if err := src.Store(ex, p.src); err != nil {
			return err
		}
		if err := tgt.Store(ex, p.tgt); err != nil {
			return err
		}
		stop, err := canceled.Load(ex)
		if err != nil {
			return err
		}
		if !stop {
			var total int64
			for _, w := range p.files {
				total += w
			}
			if err := started.Push(ex, int64(len(p.files))); err != nil {
				return err
			}
			if err := weight.Push(ex, total); err != nil {
				return err
			}
			for _, w := range p.files {
				if err := weight.Push(ex, w); err != nil {
					return err
				}
				time.Sleep(time.Duration(80+w*20) * time.Microsecond) // compareFiles
				if _, err := weight.Pop(ex); err != nil {
					return err
				}
			}
			if _, err := weight.Pop(ex); err != nil {
				return err
			}
			if _, err := started.Pop(ex); err != nil {
				return err
			}
		}
		if _, err := weight.Pop(ex); err != nil {
			return err
		}
		if _, err := started.Pop(ex); err != nil {
			return err
		}
		return nil
	}
}

func buildTasks(st *janus.State, pairs []dirPair) []janus.Task {
	started := janus.Stack{L: "monitor.itemsStarted"}
	weight := janus.Stack{L: "monitor.itemsWeight"}
	src := janus.StrVar{L: "monitor.rootUriSrc"}
	tgt := janus.StrVar{L: "monitor.rootUriTgt"}
	canceled := janus.BoolVar{L: "progress.canceled"}
	var tasks []janus.Task
	for _, p := range pairs {
		tasks = append(tasks, comparePair(started, weight, src, tgt, canceled, p))
	}
	return tasks
}

func newState() *janus.State {
	st := janus.NewState()
	janus.InitStack(st, "monitor.itemsStarted")
	janus.InitStack(st, "monitor.itemsWeight")
	janus.InitStrVar(st, "monitor.rootUriSrc", "")
	janus.InitStrVar(st, "monitor.rootUriTgt", "")
	janus.InitBoolVar(st, "progress.canceled", false)
	return st
}

func main() {
	var pairs []dirPair
	for i := 0; i < 40; i++ {
		files := make([]int64, 2+i%5)
		for j := range files {
			files[j] = int64(1 + (i+j)%4)
		}
		pairs = append(pairs, dirPair{
			src:   fmt.Sprintf("/src/dir%02d", i),
			tgt:   fmt.Sprintf("/tgt/dir%02d", i),
			files: files,
		})
	}
	st := newState()
	tasks := buildTasks(st, pairs)

	// The monitor's scratch URI fields tolerate write-after-write
	// conflicts (their values are per-iteration scratch), per §5.3.
	relax := janus.NewRelaxations(nil, []janus.Loc{"monitor.rootUriSrc", "monitor.rootUriTgt"})

	runner := janus.New(janus.Config{Threads: 8, Relax: relax})
	if err := runner.Train(st, tasks[:6]); err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	final, stats, err := runner.RunOutOfOrder(st, tasks)
	if err != nil {
		log.Fatal(err)
	}
	parElapsed := time.Since(start)

	start = time.Now()
	seqFinal, err := janus.Sequential(st, tasks)
	if err != nil {
		log.Fatal(err)
	}
	seqElapsed := time.Since(start)

	// The scratch URI fields are WAW-relaxed: their final value reflects
	// the commit order, which legitimately differs from the sequential
	// order. Every other location must agree exactly.
	for _, loc := range []janus.Loc{"monitor.itemsStarted", "monitor.itemsWeight", "progress.canceled"} {
		want, _ := seqFinal.Get(loc)
		got, _ := final.Get(loc)
		if !want.EqualValue(got) {
			log.Fatalf("%s: parallel %v != sequential %v", loc, got, want)
		}
	}
	v, _ := final.Get("monitor.itemsStarted")
	fmt.Printf("synchronized %d directory pairs; monitor restored to %v\n", len(pairs), v)
	fmt.Printf("sequential: %v   parallel (8 threads): %v   speedup: %.2fx\n",
		seqElapsed.Round(time.Millisecond), parElapsed.Round(time.Millisecond),
		float64(seqElapsed)/float64(parElapsed))
	fmt.Printf("commits=%d retries=%d cache hits=%d misses=%d\n",
		stats.Run.Commits, stats.Run.Retries,
		runner.CacheStats().Hits, runner.CacheStats().Misses)
}
