// Graphcolor: the JGraphT greedy-coloring pattern (paper Figure 3).
//
// Each task colors one node: it clears a shared usedColors scratch pad,
// marks the colors of already-colored neighbors, picks the smallest free
// color, writes it, and raises the shared maxColor if needed. usedColors
// is shared-as-local (every reader first overwrites), and maxColor is
// spuriously read (stale reads are harmless because conflicting writes
// still abort) — both declared via §5.3 consistency relaxations. Real
// read-write dependencies on neighbor colors remain and correctly abort
// tasks whose neighbors were colored concurrently.
//
// Run with: go run ./examples/graphcolor
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro"
)

const (
	nodes  = 120
	degree = 4
)

func colorLoc(v int) janus.Loc { return janus.Loc(fmt.Sprintf("color.%d", v)) }

func colorTask(used janus.BitSet, maxColor janus.Counter, v int, neighbors []int) janus.Task {
	return func(ex janus.Executor) error {
		if err := used.ClearAll(ex); err != nil {
			return err
		}
		for _, nb := range neighbors {
			c, err := (janus.Counter{L: colorLoc(nb)}).Load(ex)
			if err != nil {
				return err
			}
			if c > 0 {
				if err := used.Set(ex, int(c)); err != nil {
					return err
				}
			}
		}
		color := int64(1)
		for {
			taken, err := used.Get(ex, int(color))
			if err != nil {
				return err
			}
			if !taken {
				break
			}
			color++
		}
		time.Sleep(150 * time.Microsecond) // surrounding application work
		if err := (janus.Counter{L: colorLoc(v)}).Store(ex, color); err != nil {
			return err
		}
		cur, err := maxColor.Load(ex)
		if err != nil {
			return err
		}
		if color > cur {
			return maxColor.Store(ex, color)
		}
		return nil
	}
}

func main() {
	rng := rand.New(rand.NewSource(42))
	neighbors := make([][]int, nodes)
	for e := 0; e < nodes*degree/2; e++ {
		u, v := rng.Intn(nodes), rng.Intn(nodes)
		if u == v {
			continue
		}
		neighbors[u] = append(neighbors[u], v)
		neighbors[v] = append(neighbors[v], u)
	}

	st := janus.NewState()
	used := janus.InitBitSet(st, "usedColors")
	maxColor := janus.InitCounter(st, "maxColor", 1)
	for v := 0; v < nodes; v++ {
		janus.InitCounter(st, colorLoc(v), 0)
	}

	var tasks []janus.Task
	for v := 0; v < nodes; v++ {
		tasks = append(tasks, colorTask(used, maxColor, v, neighbors[v]))
	}

	relax := janus.NewRelaxations(
		[]janus.Loc{"maxColor", "usedColors"},
		[]janus.Loc{"usedColors"},
	)
	runner := janus.New(janus.Config{Threads: 8, Relax: relax})
	if err := runner.Train(st, tasks[:10]); err != nil {
		log.Fatal(err)
	}
	final, stats, err := runner.RunOutOfOrder(st, tasks)
	if err != nil {
		log.Fatal(err)
	}

	// Verify the coloring invariant: adjacent nodes differ.
	colors := make([]int64, nodes)
	maxSeen := int64(0)
	for v := 0; v < nodes; v++ {
		val, ok := final.Get(colorLoc(v))
		if !ok {
			log.Fatalf("node %d uncolored", v)
		}
		c := int64(0)
		fmt.Sscanf(val.String(), "%d", &c)
		colors[v] = c
		if c > maxSeen {
			maxSeen = c
		}
	}
	for v := 0; v < nodes; v++ {
		if colors[v] <= 0 {
			log.Fatalf("node %d uncolored", v)
		}
		for _, nb := range neighbors[v] {
			if colors[v] == colors[nb] {
				log.Fatalf("invalid coloring: %d and %d share color %d", v, nb, colors[v])
			}
		}
	}
	fmt.Printf("colored %d nodes with %d colors (valid greedy coloring)\n", nodes, maxSeen)
	fmt.Printf("commits=%d retries=%d (aborts only where neighbors raced)\n",
		stats.Run.Commits, stats.Run.Retries)
}
