package janus

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// simulator's cost calibration, the §5.3 online-checking alternative, log
// reclamation, privatization strategy, and ordered vs unordered commits.

import (
	"fmt"
	"testing"

	"repro/internal/conflict"
	"repro/internal/core"
	"repro/internal/stm"
	"repro/internal/vtime"
	"repro/internal/workloads"
)

// BenchmarkAblationCostModel varies the simulator's calibration constants
// (per-op cost and commit/replay cost, each ×0.5 and ×2) and reports the
// 8-thread speedups of both detectors on the best-case (jfilesync) and
// overhead-bound (jgrapht2) benchmarks. The qualitative Figure 9 claims —
// sequence-based beats write-set, write-set stays below 1x — hold at
// every calibration point; only magnitudes move.
func BenchmarkAblationCostModel(b *testing.B) {
	scales := []struct {
		name          string
		opMul, comMul float64
	}{
		{"baseline", 1, 1},
		{"cheap-ops", 0.5, 1},
		{"costly-ops", 2, 1},
		{"cheap-commit", 1, 0.5},
		{"costly-commit", 1, 2},
	}
	for _, wname := range []string{"jfilesync", "jgrapht2"} {
		w, err := workloads.ByName(wname)
		if err != nil {
			b.Fatal(err)
		}
		engine := trainedEngine(b, w, false)
		for _, sc := range scales {
			cost := vtime.DefaultCost()
			cost.Op *= sc.opMul
			cost.CommitBase *= sc.comMul
			cost.ReplayWritePerOp *= sc.comMul
			cost.ReplayReadPerOp *= sc.comMul
			for _, detName := range []string{"sequence", "write-set"} {
				b.Run(fmt.Sprintf("%s/%s/%s", wname, sc.name, detName), func(b *testing.B) {
					var stats vtime.Stats
					for i := 0; i < b.N; i++ {
						det := conflict.Detector(conflict.NewWriteSet())
						if detName == "sequence" {
							det = engine.Detector()
						}
						var err error
						_, stats, err = vtime.Run(vtime.Config{
							Threads:  8,
							Ordered:  w.Ordered,
							Detector: det,
							Cost:     &cost,
						}, w.NewState(), w.Tasks(workloads.Production, benchSeed))
						if err != nil {
							b.Fatal(err)
						}
					}
					b.ReportMetric(stats.Speedup, "speedup")
					b.ReportMetric(0, "ns/op")
				})
			}
		}
	}
}

// BenchmarkAblationOnlineDetection compares the cached (trained) sequence
// detector against the §5.3 online alternative, which runs the concrete
// Figure 8 checks at runtime on every miss. Measured as real CPU time of
// the wall-clock runtime — the paper's expectation that online checking
// is "unlikely to be acceptable in performance" shows up as ns/op.
func BenchmarkAblationOnlineDetection(b *testing.B) {
	w, err := workloads.ByName("jfilesync")
	if err != nil {
		b.Fatal(err)
	}
	tasks := w.Tasks(workloads.Small, benchSeed)
	for _, mode := range []string{"cached", "online"} {
		b.Run(mode, func(b *testing.B) {
			var det conflict.Detector
			if mode == "cached" {
				det = trainedEngine(b, w, false).Detector()
			} else {
				online := core.NewEngine(core.Options{Online: true, Relax: w.Relaxations})
				d := online.Detector()
				d.Online = true
				det = d
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := stm.Run(stm.Config{
					Threads:  4,
					Detector: det,
				}, w.NewState(), tasks); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationLogReclamation measures the committed-history footprint
// with and without the reclamation extension, reporting the peak history
// length.
func BenchmarkAblationLogReclamation(b *testing.B) {
	w, err := workloads.ByName("pmd")
	if err != nil {
		b.Fatal(err)
	}
	tasks := w.Tasks(workloads.Small, benchSeed)
	engine := trainedEngine(b, w, false)
	for _, reclaim := range []bool{false, true} {
		name := "keep-all"
		if reclaim {
			name = "reclaim"
		}
		b.Run(name, func(b *testing.B) {
			var maxHist int64
			for i := 0; i < b.N; i++ {
				_, stats, err := stm.Run(stm.Config{
					Threads:     4,
					Detector:    engine.Detector(),
					ReclaimLogs: reclaim,
				}, w.NewState(), tasks)
				if err != nil {
					b.Fatal(err)
				}
				maxHist = stats.MaxHist
			}
			b.ReportMetric(float64(maxHist), "peak-history")
		})
	}
}

// BenchmarkAblationPrivatization compares naive whole-state copying (the
// paper prototype) with copy-on-access over the persistent map (the
// paper's proposed improvement) on a benchmark with a large shared state.
func BenchmarkAblationPrivatization(b *testing.B) {
	w, err := workloads.ByName("jgrapht2")
	if err != nil {
		b.Fatal(err)
	}
	tasks := w.Tasks(workloads.Small, benchSeed)
	engine := trainedEngine(b, w, false)
	for _, priv := range []stm.Privatize{stm.PrivatizeCopy, stm.PrivatizePersistent} {
		b.Run(priv.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := stm.Run(stm.Config{
					Threads:   4,
					Detector:  engine.Detector(),
					Privatize: priv,
				}, w.NewState(), tasks); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCommitOrder compares ordered and unordered commits on
// the coloring benchmark (which is legal under both).
func BenchmarkAblationCommitOrder(b *testing.B) {
	w, err := workloads.ByName("jgrapht1")
	if err != nil {
		b.Fatal(err)
	}
	engine := trainedEngine(b, w, false)
	for _, ordered := range []bool{false, true} {
		name := "unordered"
		if ordered {
			name = "ordered"
		}
		b.Run(name, func(b *testing.B) {
			var stats vtime.Stats
			for i := 0; i < b.N; i++ {
				var err error
				_, stats, err = vtime.Run(vtime.Config{
					Threads:  8,
					Ordered:  ordered,
					Detector: engine.Detector(),
				}, w.NewState(), w.Tasks(workloads.Production, benchSeed))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(stats.Speedup, "speedup")
			b.ReportMetric(stats.RetryRatio(), "retries/txn")
			b.ReportMetric(0, "ns/op")
		})
	}
}
