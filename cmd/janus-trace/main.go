// Command janus-trace inspects the training-time dependence analysis
// (§5.1) for one benchmark: the sequential trace, the dependence-graph
// edges over projection locations, and the mined per-location, per-task
// operation sequences, with their §5.2 regular abstractions.
//
// Usage:
//
//	janus-trace -workload jfilesync
//	janus-trace -workload pmd -edges -max 40
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/deps"
	"repro/internal/seqabs"
	"repro/internal/train"
	"repro/internal/workloads"
)

func main() {
	var (
		name      = flag.String("workload", "", "benchmark to trace (required)")
		showEdges = flag.Bool("edges", false, "also dump dependence-graph edges")
		maxItems  = flag.Int("max", 20, "max items to print per section")
	)
	flag.Parse()
	if *name == "" {
		fmt.Fprintln(os.Stderr, "janus-trace: -workload is required")
		flag.Usage()
		os.Exit(2)
	}
	w, err := workloads.ByName(*name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "janus-trace: %v\n", err)
		os.Exit(1)
	}
	st := w.NewState()
	p := train.NewProfiler(st)
	if err := p.Run(w.Tasks(workloads.Training, 1000)); err != nil {
		fmt.Fprintf(os.Stderr, "janus-trace: %v\n", err)
		os.Exit(1)
	}
	trace := p.Trace()
	fmt.Printf("benchmark: %s — training trace: %d operations\n\n", w.Name, len(trace))

	if *showEdges {
		g := deps.Build(trace)
		fmt.Printf("dependence graph: %d edges (showing up to %d)\n", len(g.Edges), *maxItems)
		for i, e := range g.Edges {
			if i >= *maxItems {
				fmt.Printf("  … %d more\n", len(g.Edges)-i)
				break
			}
			fmt.Printf("  %s\n", e)
		}
		fmt.Println()
	}

	mined := deps.Mine(trace)
	shared := deps.SharedPLocs(mined)
	fmt.Printf("projection locations: %d total, %d shared across tasks\n\n", len(mined), len(shared))

	abs := &seqabs.Abstracter{Mode: seqabs.Abstract}
	fmt.Printf("mined shared-location sequences (showing up to %d locations):\n", *maxItems)
	printed := 0
	for _, ploc := range shared {
		if printed >= *maxItems {
			fmt.Printf("… %d more shared locations\n", len(shared)-printed)
			break
		}
		printed++
		fmt.Printf("%s:\n", ploc)
		seqs := mined[ploc]
		shown := seqs
		if len(shown) > 4 {
			shown = shown[:4]
		}
		for _, s := range shown {
			fmt.Printf("  %s\n", s)
			fmt.Printf("    abstraction: %s\n", abs.Key(s.Syms()))
		}
		if len(seqs) > len(shown) {
			fmt.Printf("  … %d more task sequences\n", len(seqs)-len(shown))
		}
	}
}
