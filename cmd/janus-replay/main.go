// Command janus-replay deterministically re-executes a recorded op trace
// (see internal/rec and `janus-bench -record`) and verifies the outcome
// against the trace's own oracle digest.
//
// Replay runs up to two stages:
//
//  1. Sequential oracle replay: the recorded transaction logs are applied
//     over the trace's initial-state snapshot in commit order. By
//     serializability this must reproduce the recorded final state
//     exactly, so a digest mismatch means a corrupted or internally
//     inconsistent trace (or a runtime bug — which is the point).
//  2. Parallel replay (skipped with -seq-only): the same transactions run
//     again through the real stm runtime with write-set detection and the
//     recorded commit order pinned (ordered commit over tasks arranged in
//     commit order), turning the captured production run into a live —
//     but still deterministic — protocol workout.
//
// The report is a bench.RunReport (-json), so cmd/janus-benchjson can fold
// replayed production captures into a benchmark trajectory
// (BENCH_replay.json). Exit status is nonzero on any digest mismatch, on
// lossy/truncated traces, and on decode failures.
//
// Usage:
//
//	janus-replay trace.bin                # verify + parallel replay
//	janus-replay -json trace.bin          # machine-readable report
//	janus-replay -seq-only trace.bin      # oracle replay only
//	janus-replay -threads 8 trace.bin     # override recorded worker count
//	janus-replay -verify-ops trace.bin    # also check per-op observed values
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/rec"
)

func main() {
	var (
		jsonOut   = flag.Bool("json", false, "emit the replay report as a bench.RunReport JSON array")
		threads   = flag.Int("threads", 0, "worker count for the parallel replay (0 = the recorded count)")
		seqOnly   = flag.Bool("seq-only", false, "run only the sequential oracle replay, skip the parallel stm re-execution")
		verifyOps = flag.Bool("verify-ops", false, "additionally verify every op's result against the recorded observed value during sequential replay")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fatalf("usage: janus-replay [flags] <trace file>")
	}
	path := flag.Arg(0)

	f, err := os.Open(path)
	check(err)
	trace, err := rec.ReadTrace(f)
	f.Close()
	if err != nil {
		var terr *rec.TraceError
		if errors.As(err, &terr) {
			fatalf("%s: rejected (%s): %v", path, terr.Reason, err)
		}
		fatalf("%s: %v", path, err)
	}

	info := bench.ReplayInfo{
		Trace:      path,
		Commits:    int64(len(trace.Txns)),
		DigestKind: trace.DigestKind.String(),
		Match:      true,
	}
	if trace.DigestKind != rec.DigestNone {
		info.RecordedDigest = rec.FormatDigest(trace.Digest)
	}
	rep := bench.RunReport{
		Workload: trace.Meta.Workload,
		Detector: "replay/write-set",
		Threads:  *threads,
		Size:     "replay",
		Tasks:    len(trace.Txns),
		Replay:   &info,
	}
	if rep.Threads == 0 {
		rep.Threads = trace.Meta.Threads
	}
	fail := func(format string, args ...any) {
		rep.Error = fmt.Sprintf(format, args...)
		info.Match = false
		emit(&rep, *jsonOut)
		os.Exit(1)
	}

	seqStart := time.Now()
	seqState, err := trace.ReplaySequential(*verifyOps)
	if err != nil {
		fail("sequential replay: %v", err)
	}
	rep.SequentialNs = int64(time.Since(seqStart))
	info.SequentialDigest = rec.FormatDigest(rec.Digest(seqState))
	if trace.DigestKind != rec.DigestNone && info.SequentialDigest != info.RecordedDigest {
		fail("sequential replay digest %s != recorded %s (%s)",
			info.SequentialDigest, info.RecordedDigest, trace.DigestKind)
	}

	if !*seqOnly {
		parStart := time.Now()
		parState, stats, err := trace.Replay(*threads)
		if err != nil {
			fail("parallel replay: %v", err)
		}
		rep.ElapsedNs = int64(time.Since(parStart))
		rep.Run = stats
		info.ParallelDigest = rec.FormatDigest(rec.Digest(parState))
		if info.ParallelDigest != info.SequentialDigest {
			fail("parallel replay digest %s != sequential %s",
				info.ParallelDigest, info.SequentialDigest)
		}
		if rep.ElapsedNs > 0 {
			rep.Speedup = float64(rep.SequentialNs) / float64(rep.ElapsedNs)
		}
	}

	emit(&rep, *jsonOut)
}

// emit renders the report (an array, matching janus-bench -json, so the
// same tooling folds both).
func emit(rep *bench.RunReport, jsonOut bool) {
	if jsonOut {
		check(bench.WriteJSON(os.Stdout, []bench.RunReport{*rep}))
		return
	}
	in := rep.Replay
	if rep.Error != "" {
		fmt.Printf("%s: REPLAY FAILED: %s\n", in.Trace, rep.Error)
		return
	}
	fmt.Printf("%s: workload=%s commits=%d digest=%s (%s)\n",
		in.Trace, rep.Workload, in.Commits, in.SequentialDigest, in.DigestKind)
	fmt.Printf("  sequential: %v, digest verified\n", time.Duration(rep.SequentialNs))
	if in.ParallelDigest != "" {
		fmt.Printf("  parallel: threads=%d %v commits=%d retries=%d, digest verified\n",
			rep.Threads, time.Duration(rep.ElapsedNs), rep.Run.Commits, rep.Run.Retries)
	}
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "janus-replay: "+format+"\n", args...)
	os.Exit(1)
}
