// Command janus-bench regenerates the JANUS evaluation (§7): Figures 9,
// 10, and 11 and Tables 5 and 6.
//
// Usage:
//
//	janus-bench                         # everything, production inputs
//	janus-bench -figure 9               # one figure
//	janus-bench -table 5                # one table
//	janus-bench -size small -runs 2     # faster, reduced inputs
//	janus-bench -workloads jfilesync,pmd
//	janus-bench -mode wall              # wall-clock runtime (multi-core hosts)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/vtime"
	"repro/internal/workloads"
)

func main() {
	var (
		figure   = flag.Int("figure", 0, "regenerate one figure (9, 10, or 11); 0 = all")
		table    = flag.Int("table", 0, "print one table (5 or 6); 0 = all")
		size     = flag.String("size", "production", "input scale: production, training, or small")
		runs     = flag.Int("runs", 0, "measured production runs per configuration (0 = mode default; paper: 10)")
		threads  = flag.String("threads", "1,2,4,8", "comma-separated thread counts")
		names    = flag.String("workloads", "", "comma-separated benchmark filter (default all)")
		mode     = flag.String("mode", "sim", "measurement mode: sim (virtual-time machine) or wall (real goroutines)")
		training = flag.Bool("training-summary", false, "also print the per-benchmark training reports")
		timeline = flag.String("timeline", "", "print the simulated schedule of one benchmark and exit")
		cores    = flag.Int("cores", 0, "override the simulated machine's core count (0 = the paper's 4-core/2-SMT testbed)")
	)
	flag.Parse()

	opts := bench.Opts{ProdRuns: *runs}
	switch *size {
	case "production":
		opts.Size = workloads.Production
	case "training":
		opts.Size = workloads.Training
	case "small":
		opts.Size = workloads.Small
	default:
		fatalf("unknown -size %q", *size)
	}
	switch *mode {
	case "sim":
		opts.Mode = bench.Simulated
	case "wall":
		opts.Mode = bench.WallClock
	default:
		fatalf("unknown -mode %q", *mode)
	}
	for _, part := range strings.Split(*threads, ",") {
		var th int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &th); err != nil || th < 1 {
			fatalf("bad -threads entry %q", part)
		}
		opts.Threads = append(opts.Threads, th)
	}
	if *names != "" {
		opts.Workloads = strings.Split(*names, ",")
	}
	if *cores > 0 {
		opts.Machine = &vtime.Machine{Cores: *cores, SMTBonus: 0.25}
	}

	out := os.Stdout
	if *timeline != "" {
		check(bench.Timeline(out, *timeline, opts.Threads[len(opts.Threads)-1], opts))
		return
	}
	wantFig := func(n int) bool { return *figure == 0 && *table == 0 || *figure == n }
	wantTab := func(n int) bool { return *figure == 0 && *table == 0 || *table == n }

	if wantTab(5) {
		bench.Table5(out)
		fmt.Fprintln(out)
	}
	if wantTab(6) {
		bench.Table6(out)
		fmt.Fprintln(out)
	}
	if wantFig(9) {
		check(bench.Figure9(out, opts))
		fmt.Fprintln(out)
	}
	if wantFig(10) {
		check(bench.Figure10(out, opts))
		fmt.Fprintln(out)
	}
	if wantFig(11) {
		check(bench.Figure11(out, opts))
		fmt.Fprintln(out)
	}
	if *training {
		check(bench.TrainingSummary(out))
	}
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "janus-bench: "+format+"\n", args...)
	os.Exit(1)
}
