// Command janus-bench regenerates the JANUS evaluation (§7): Figures 9,
// 10, and 11 and Tables 5 and 6, plus profiled single runs with event
// tracing and machine-readable stats.
//
// Usage:
//
//	janus-bench                         # everything, production inputs
//	janus-bench -figure 9               # one figure
//	janus-bench -table 5                # one table
//	janus-bench -size small -runs 2     # faster, reduced inputs
//	janus-bench -workloads jfilesync,pmd
//	janus-bench -mode wall              # wall-clock runtime (multi-core hosts)
//
// Observability:
//
//	janus-bench -trace out.json -workloads jfilesync
//	    run one traced production run and write a Chrome trace-event
//	    file (open in Perfetto / chrome://tracing): per-worker lanes,
//	    abort events with reason + location, cache queries
//	janus-bench -json -workloads jfilesync,pmd
//	    emit full RunStats + CacheStats + timing as JSON
//	janus-bench -obs :6060 ...
//	    serve /debug/vars (expvar) and /debug/pprof during the run
//
// Robustness:
//
//	janus-bench -json -chaos 42 -workloads jfilesync
//	    profile under deterministic fault injection (forced aborts,
//	    stretched commit windows, forced cache misses) with seed 42;
//	    the report carries the injected-fault counts
//	janus-bench -json -serialize-after 8 -backoff 50us ...
//	    enable contention management: bounded exponential backoff and
//	    escalation to irrevocable serial mode after 8 consecutive aborts
//	janus-bench -json -govern -chaos 42 -workloads jfilesync
//	    wrap the run in the health governor (graceful degradation to
//	    write-set detection / serial execution under miss storms or
//	    abort churn); the chaos injector adds a miss storm and the
//	    report records governor_state, demotions, and the full health
//	    snapshot
//
// A failed run (task error, retry-guard livelock) exits nonzero and, in
// JSON mode, carries the failure in the report's `error` field instead of
// presenting partial stats as success.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	loadgenpkg "repro/internal/bench/loadgen"
	"repro/internal/obs"
	"repro/internal/vtime"
	"repro/internal/workloads"
)

func main() {
	var (
		figure   = flag.Int("figure", 0, "regenerate one figure (9, 10, or 11); 0 = all")
		table    = flag.Int("table", 0, "print one table (5 or 6); 0 = all")
		size     = flag.String("size", "production", "input scale: production, training, or small")
		runs     = flag.Int("runs", 0, "measured production runs per configuration (0 = mode default; paper: 10)")
		threads  = flag.String("threads", "1,2,4,8", "comma-separated thread counts")
		names    = flag.String("workloads", "", "comma-separated benchmark filter (default all)")
		mode     = flag.String("mode", "sim", "measurement mode: sim (virtual-time machine) or wall (real goroutines)")
		training = flag.Bool("training-summary", false, "also print the per-benchmark training reports")
		timeline = flag.String("timeline", "", "print the simulated schedule of one benchmark and exit")
		cores    = flag.Int("cores", 0, "override the simulated machine's core count (0 = the paper's 4-core/2-SMT testbed)")
		traceOut = flag.String("trace", "", "profile one traced wall-clock run and write a Chrome trace-event file here (default workload: jfilesync)")
		jsonOut  = flag.Bool("json", false, "profile wall-clock runs and emit RunStats + CacheStats + timing as JSON")
		detName  = flag.String("detector", "seq", "detector for profiled runs: seq or ws")
		obsAddr  = flag.String("obs", "", "serve /debug/vars and /debug/pprof on this address (e.g. :6060)")
		shards   = flag.Int("cacheshards", 0, "commutativity-cache shard count, rounded up to a power of two (0 = default)")
		chaosSd  = flag.Int64("chaos", 0, "run profiled runs under deterministic fault injection with this seed (0 = off): forced aborts, stretched commit windows, forced cache misses")
		serAfter = flag.Int("serialize-after", 0, "escalate a task to irrevocable serial mode after this many consecutive aborts (0 = never)")
		backoff  = flag.Duration("backoff", 0, "base of the bounded exponential retry backoff, e.g. 50us (0 = retry immediately)")
		govern   = flag.Bool("govern", false, "wrap profiled runs in the health governor (graceful degradation); with -chaos, adds a miss storm so the demotion path is exercised")
		govWin   = flag.Int("govern-window", 0, "governor evaluation window size in detections (0 = default)")
		record   = flag.String("record", "", "capture each profiled run as a replayable binary op-trace at this path (replay with janus-replay)")
		recFly   = flag.Int("record-flight", 0, "flight-recorder mode: keep only this many trace chunks in memory and dump them on a governor demotion/trip (requires -record and -govern; 0 = stream the whole run)")
		recGzip  = flag.Bool("record-gzip", false, "gzip-compress trace chunks")
		stripes  = flag.Int("commit-stripes", 0, "commit-path lock table size for profiled runs (0 = default; 1 = single global commit lock)")
		histComp = flag.Bool("history-compress", false, "demote committed-history entries past the recent window to compact compressed records in profiled runs (flat-memory large histories; run.demotions/run.hist_bytes record the effect)")
		compAft  = flag.Int("compress-after", 0, "most-recent committed entries kept in full form under -history-compress (0 = default)")
		opsTxn   = flag.Int("ops-per-txn", 0, "operations per transaction for the synthetic heavy workload (selects -workloads heavy when no filter is given; 0 = heavy default)")
		txnSkew  = flag.Float64("txn-skew", 0, "heavy workload location skew: 0 = uniform access, larger values concentrate the footprint on a hot subset")
		serveURL = flag.String("serve", "", "load-generator client mode: drive a running janus-serve at this base URL and verify the exactly-once/digest contract (exits nonzero on violation)")
		srvTen   = flag.Int("serve-tenants", 0, "loadgen: tenant count (0 = default)")
		srvCli   = flag.Int("serve-clients", 0, "loadgen: concurrent clients per tenant (0 = default)")
		srvBat   = flag.Int("serve-batches", 0, "loadgen: batches per client (0 = default)")
		srvBase  = flag.Int("serve-seq-base", 0, "loadgen: batch sequence offset; set to the previous run's -serve-batches when driving a restarted durable daemon")
		srvRes   = flag.Bool("serve-resume", false, "loadgen: resubmit every pre-crash batch ID below -serve-seq-base first, requiring 409 original-verdict or fresh 200 for each (crash-restart verification)")
	)
	flag.Parse()

	if *serveURL != "" {
		loadgen(*serveURL, *srvTen, *srvCli, *srvBat, *srvBase, *srvRes, *jsonOut)
		return
	}

	opts := bench.Opts{
		ProdRuns: *runs, CacheShards: *shards,
		ChaosSeed: *chaosSd, SerializeAfter: *serAfter, BackoffBase: *backoff,
		Govern: *govern, GovernWindow: *govWin,
		RecordPath: *record, FlightChunks: *recFly, RecordGzip: *recGzip,
		CommitStripes:   *stripes,
		HistoryCompress: *histComp, CompressAfter: *compAft,
		OpsPerTxn: *opsTxn, TxnSkew: *txnSkew,
	}
	if (*opsTxn > 0 || *txnSkew != 0) && *names == "" {
		// The shape knobs only mean something to the synthetic heavy
		// workload; select it rather than silently profiling jfilesync.
		*names = workloads.HeavyName
	}
	if *recFly > 0 && *record == "" {
		fatalf("-record-flight requires -record")
	}
	if *recFly > 0 && !*govern {
		fatalf("-record-flight dumps on governor transitions; add -govern")
	}
	switch *size {
	case "production":
		opts.Size = workloads.Production
	case "training":
		opts.Size = workloads.Training
	case "small":
		opts.Size = workloads.Small
	default:
		fatalf("unknown -size %q", *size)
	}
	switch *mode {
	case "sim":
		opts.Mode = bench.Simulated
	case "wall":
		opts.Mode = bench.WallClock
	default:
		fatalf("unknown -mode %q", *mode)
	}
	for _, part := range strings.Split(*threads, ",") {
		var th int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &th); err != nil || th < 1 {
			fatalf("bad -threads entry %q", part)
		}
		opts.Threads = append(opts.Threads, th)
	}
	if *names != "" {
		opts.Workloads = strings.Split(*names, ",")
	}
	if *cores > 0 {
		opts.Machine = &vtime.Machine{Cores: *cores, SMTBonus: 0.25}
	}

	if *obsAddr != "" {
		addr, err := obs.Serve(*obsAddr)
		check(err)
		fmt.Fprintf(os.Stderr, "janus-bench: debug endpoint on http://%s/debug/vars\n", addr)
	}

	out := os.Stdout
	if *timeline != "" {
		check(bench.Timeline(out, *timeline, opts.Threads[len(opts.Threads)-1], opts))
		return
	}
	if *traceOut != "" || *jsonOut {
		profile(out, opts, *traceOut, *jsonOut, *detName)
		return
	}
	if *chaosSd != 0 || *serAfter != 0 || *backoff != 0 || *govern || *govWin != 0 || *record != "" || *stripes != 0 || *histComp || *compAft != 0 {
		fatalf("-chaos/-serialize-after/-backoff/-govern/-record/-commit-stripes/-history-compress apply to profiled wall-clock runs; add -json or -trace")
	}
	wantFig := func(n int) bool { return *figure == 0 && *table == 0 || *figure == n }
	wantTab := func(n int) bool { return *figure == 0 && *table == 0 || *table == n }

	if wantTab(5) {
		bench.Table5(out)
		fmt.Fprintln(out)
	}
	if wantTab(6) {
		bench.Table6(out)
		fmt.Fprintln(out)
	}
	if wantFig(9) {
		check(bench.Figure9(out, opts))
		fmt.Fprintln(out)
	}
	if wantFig(10) {
		check(bench.Figure10(out, opts))
		fmt.Fprintln(out)
	}
	if wantFig(11) {
		check(bench.Figure11(out, opts))
		fmt.Fprintln(out)
	}
	if *training {
		check(bench.TrainingSummary(out))
	}
}

// profile runs the observability mode: one wall-clock production run per
// selected workload (default jfilesync), optionally traced, reported as
// JSON or a human summary.
func profile(out *os.File, opts bench.Opts, traceOut string, jsonOut bool, detName string) {
	det := bench.Seq
	switch detName {
	case "seq":
	case "ws":
		det = bench.WS
	default:
		fatalf("unknown -detector %q (want seq or ws)", detName)
	}
	names := opts.Workloads
	if len(names) == 0 {
		names = []string{"jfilesync"}
	}
	if traceOut != "" && len(names) > 1 {
		fatalf("-trace profiles a single workload; got %d (use -workloads)", len(names))
	}
	if opts.RecordPath != "" && len(names) > 1 {
		fatalf("-record captures a single workload; got %d (use -workloads)", len(names))
	}
	threads := opts.Threads[len(opts.Threads)-1]
	var reports []bench.RunReport
	failed := false
	for _, name := range names {
		w, err := opts.Resolve(name)
		check(err)
		var tracer *obs.Trace
		if traceOut != "" {
			tracer = obs.NewTrace(0)
			obs.Publish("janus.obs", tracer)
		}
		// A failed run still yields a report: the error lands in the
		// JSON `error` field (with whatever partial stats were gathered)
		// and the process exits nonzero, instead of reporting partial
		// stats as success.
		rep, err := bench.ProfileRun(w, det, threads, opts, tracer)
		reports = append(reports, rep)
		if err != nil {
			failed = true
			fmt.Fprintf(os.Stderr, "janus-bench: %s failed: %v\n", name, err)
			continue
		}
		if traceOut != "" {
			f, err := os.Create(traceOut)
			check(err)
			check(tracer.WriteChromeJSON(f))
			check(f.Close())
			fmt.Fprintf(os.Stderr, "janus-bench: wrote %s (%d workers, open in https://ui.perfetto.dev)\n",
				traceOut, tracer.Workers())
		}
		if rep.Record != nil {
			how := "stream"
			if rep.FlightDump {
				how = "flight dump"
			}
			fmt.Fprintf(os.Stderr, "janus-bench: recorded %s (%s, %d commits, %d events, %d bytes; replay with janus-replay)\n",
				rep.RecordPath, how, rep.Record.Commits, rep.Record.Events, rep.Record.Bytes)
		}
	}
	if jsonOut {
		check(bench.WriteJSON(out, reports))
	} else {
		for _, rep := range reports {
			if rep.Error != "" {
				fmt.Fprintf(out, "%s: detector=%s threads=%d FAILED: %s\n",
					rep.Workload, rep.Detector, rep.Threads, rep.Error)
				continue
			}
			fmt.Fprintf(out, "%s: detector=%s threads=%d tasks=%d commits=%d retries=%d speedup=%.2f\n",
				rep.Workload, rep.Detector, rep.Threads, rep.Tasks, rep.Run.Commits, rep.Run.Retries, rep.Speedup)
			if rep.Run.Escalations > 0 || rep.Run.BackoffWaits > 0 {
				fmt.Fprintf(out, "  contention: escalations=%d backoff-waits=%d\n",
					rep.Run.Escalations, rep.Run.BackoffWaits)
			}
			if rep.Run.ValidationsSkipped > 0 {
				fmt.Fprintf(out, "  incremental validation: skipped=%d already-validated entries\n",
					rep.Run.ValidationsSkipped)
			}
			if rep.Chaos != nil {
				fmt.Fprintf(out, "  chaos(seed=%d): %+v\n", rep.ChaosSeed, *rep.Chaos)
			}
			if rep.Health != nil {
				fmt.Fprintf(out, "  governor: state=%s demotions=%d trips=%d probes=%d restores=%d\n",
					rep.Health.State, rep.Health.Demotions, rep.Health.Trips,
					rep.Health.Probes, rep.Health.Restores)
			}
			if len(rep.Run.AbortReasons) > 0 {
				fmt.Fprintf(out, "  abort reasons: %v\n", rep.Run.AbortReasons)
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

// loadgen runs the janus-serve client mode: deterministic concurrent
// batch traffic plus the exactly-once / oracle-digest verification. Any
// lost or duplicated accepted batch, digest mismatch, or untyped shed
// reply exits nonzero — this is the gating half of the CI serving smoke.
func loadgen(url string, tenants, clients, batches, seqBase int, resume, jsonOut bool) {
	rep, err := loadgenpkg.Run(os.Stderr, loadgenpkg.Opts{
		URL:     url,
		Tenants: tenants,
		Clients: clients,
		Batches: batches,
		SeqBase: seqBase,
		Resume:  resume,
	})
	check(err)
	if jsonOut {
		check(loadgenpkg.WriteJSON(os.Stdout, rep))
	} else {
		fmt.Printf("loadgen: submitted=%d accepted=%d sheds=%d deadline-misses=%d gave-up=%d resubmitted=%d recovered=%d\n",
			rep.Submitted, rep.Accepted, rep.Sheds, rep.Deadlines, rep.GaveUp, rep.Resubmitted, rep.Recovered)
		for _, tr := range rep.Tenants {
			fmt.Printf("  tenant %s: applied=%d digest=%s ok=%v\n", tr.Tenant, tr.Applied, tr.Digest, tr.OK)
		}
	}
	if !rep.OK {
		fatalf("loadgen verification FAILED")
	}
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "janus-bench: "+format+"\n", args...)
	os.Exit(1)
}
