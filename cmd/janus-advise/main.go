// Command janus-advise profiles a benchmark sequentially and reports, per
// shared location, the §2 semantic pattern it exhibits and the §5.3
// consistency relaxations the advisor can justify — the automated
// counterpart of the paper's Hawkeye-assisted, hand-written specification
// step (§7.1).
//
// Usage:
//
//	janus-advise -workload jgrapht1
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/advisor"
	"repro/internal/state"
	"repro/internal/train"
	"repro/internal/workloads"
)

func main() {
	name := flag.String("workload", "", "benchmark to advise on (required)")
	flag.Parse()
	if *name == "" {
		fmt.Fprintln(os.Stderr, "janus-advise: -workload is required")
		flag.Usage()
		os.Exit(2)
	}
	w, err := workloads.ByName(*name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "janus-advise: %v\n", err)
		os.Exit(1)
	}
	p := train.NewProfiler(w.NewState())
	if err := p.Run(w.Tasks(workloads.Training, 1000)); err != nil {
		fmt.Fprintf(os.Stderr, "janus-advise: %v\n", err)
		os.Exit(1)
	}
	rep := advisor.Analyze(p.Trace())
	fmt.Printf("benchmark: %s — %d shared locations\n\n", w.Name, len(rep.Findings))
	rep.Render(os.Stdout)

	safe := rep.SafeRelaxations()
	fmt.Printf("\nsafe relaxation specification:\n")
	printSpec(safe.RAW, "RAW")
	printSpec(safe.WAW, "WAW")
	if w.Relaxations != nil {
		fmt.Printf("\nhand-written specification (internal/workloads):\n")
		printSpec(w.Relaxations.RAW, "RAW")
		printSpec(w.Relaxations.WAW, "WAW")
	}
}

func printSpec(m map[state.Loc]bool, kind string) {
	var locs []string
	for l, on := range m {
		if on {
			locs = append(locs, string(l))
		}
	}
	sort.Strings(locs)
	if len(locs) == 0 {
		fmt.Printf("  tolerate %s: (none)\n", kind)
		return
	}
	for _, l := range locs {
		fmt.Printf("  tolerate %s: %s\n", kind, l)
	}
}
