// Command janus-train runs the offline training phase (§5.1) for one
// benchmark and dumps the learned commutativity specification: the cache
// of abstract sequence-pair patterns and their proved condition kinds,
// plus the per-payload training reports.
//
// Usage:
//
//	janus-train -workload jfilesync
//	janus-train -workload weka -no-abstraction
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/fsio"
	"repro/internal/workloads"
)

func main() {
	var (
		name  = flag.String("workload", "", "benchmark to train (required); one of jfilesync, jgrapht1, jgrapht2, pmd, weka")
		noAbs = flag.Bool("no-abstraction", false, "disable §5.2 sequence abstraction")
		out   = flag.String("out", "", "also write the trained specification as JSON to this file")
	)
	flag.Parse()
	if *name == "" {
		fmt.Fprintln(os.Stderr, "janus-train: -workload is required")
		flag.Usage()
		os.Exit(2)
	}
	w, err := workloads.ByName(*name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "janus-train: %v\n", err)
		os.Exit(1)
	}
	engine := core.NewEngine(core.Options{
		DisableAbstraction: *noAbs,
		Relax:              w.Relaxations,
	})
	if err := engine.TrainMany(w.NewState(), w.TrainingPayloads()); err != nil {
		fmt.Fprintf(os.Stderr, "janus-train: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchmark: %s (%s)\n", w.Name, w.Desc)
	fmt.Printf("abstraction: %v\n\n", !*noAbs)
	for i, rep := range engine.Reports() {
		fmt.Printf("training run %d: %s\n", i+1, rep)
	}
	fmt.Printf("\ncommutativity specification (%d entries):\n%s", engine.Cache().Len(), engine.Cache().Dump())
	if *out != "" {
		if err := writeSpecAtomic(engine, *out); err != nil {
			fmt.Fprintf(os.Stderr, "janus-train: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nspecification written to %s\n", *out)
	}
}

// writeSpecAtomic publishes the spec artifact through fsio's atomic
// temp+fsync+rename idiom — a crash or full disk mid-write can never
// leave a truncated artifact at the published path (the envelope CRC
// would catch one, but a deployment should not have to).
func writeSpecAtomic(engine *core.Engine, out string) error {
	return fsio.WriteAtomicFunc(out, func(w io.Writer) error {
		return engine.SaveSpec(w)
	})
}
