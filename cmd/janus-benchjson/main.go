// janus-benchjson folds `go test -bench` output into a JSON benchmark
// trajectory file, so performance changes are recorded next to the code
// that caused them instead of in CI logs that expire.
//
// The trajectory file holds one entry per label; re-recording a label
// replaces its entry and leaves the others untouched, so a "before"
// baseline recorded once survives any number of "after" refreshes:
//
//	go test -bench Detect -benchmem ./internal/conflict |
//	    janus-benchjson -file BENCH_detect.json -label after
//
// With -reports, stdin is instead a JSON array of bench.RunReport (the
// output of `janus-bench -json` or `janus-replay -json`); each report
// folds into the trajectory as wall-clock results, so replayed
// production captures leave the same regression trail as benchmarks:
//
//	janus-replay -json janus.trace |
//	    janus-benchjson -reports -file BENCH_replay.json -label replay
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
)

// Result is one benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric columns (e.g. live-B retained
	// memory, retries/txn) keyed by their unit string.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Entry is one labeled benchmark run.
type Entry struct {
	Label   string   `json:"label"`
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	file := flag.String("file", "BENCH_detect.json", "trajectory file to update")
	label := flag.String("label", "", "label to record this run under (required)")
	reports := flag.Bool("reports", false, "parse stdin as a bench.RunReport JSON array (janus-bench/janus-replay -json) instead of go test -bench text")
	flag.Parse()
	if *label == "" {
		fmt.Fprintln(os.Stderr, "janus-benchjson: -label is required")
		os.Exit(2)
	}
	var entry *Entry
	var err error
	if *reports {
		entry, err = parseReports(os.Stdin)
	} else {
		entry, err = parse(bufio.NewScanner(os.Stdin))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "janus-benchjson:", err)
		os.Exit(1)
	}
	entry.Label = *label
	entries, err := load(*file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "janus-benchjson:", err)
		os.Exit(1)
	}
	replaced := false
	for i := range entries {
		if entries[i].Label == *label {
			entries[i] = *entry
			replaced = true
			break
		}
	}
	if !replaced {
		entries = append(entries, *entry)
	}
	out, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "janus-benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*file, append(out, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "janus-benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "janus-benchjson: recorded %d results under %q in %s\n",
		len(entry.Results), *label, *file)
}

func load(path string) ([]Entry, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var entries []Entry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return entries, nil
}

// parseReports reads a bench.RunReport JSON array and renders each report
// as two pseudo-benchmark results: the parallel run (Run/<workload>, one
// iteration at the report's thread count) and its sequential baseline
// (Sequential/<workload>). Failed reports are rejected — a trajectory
// entry must not record a broken run as a data point.
func parseReports(in *os.File) (*Entry, error) {
	var reps []bench.RunReport
	if err := json.NewDecoder(in).Decode(&reps); err != nil {
		return nil, fmt.Errorf("parsing RunReport array: %w", err)
	}
	if len(reps) == 0 {
		return nil, errors.New("no reports on stdin")
	}
	e := &Entry{Pkg: "repro/internal/bench"}
	for _, r := range reps {
		if r.Error != "" {
			return nil, fmt.Errorf("report %s/%s failed: %s", r.Workload, r.Detector, r.Error)
		}
		name := r.Workload
		if r.Detector != "" {
			name += "/" + r.Detector
		}
		if r.ElapsedNs > 0 {
			e.Results = append(e.Results, Result{
				Name: "Run/" + name, Procs: r.Threads,
				Iterations: 1, NsPerOp: float64(r.ElapsedNs),
			})
		}
		if r.SequentialNs > 0 {
			e.Results = append(e.Results, Result{
				Name: "Sequential/" + name, Procs: 1,
				Iterations: 1, NsPerOp: float64(r.SequentialNs),
			})
		}
	}
	if len(e.Results) == 0 {
		return nil, errors.New("reports carried no timings")
	}
	return e, nil
}

// parse reads `go test -bench` text output: header lines (goos, goarch,
// cpu, pkg) followed by benchmark result lines.
func parse(sc *bufio.Scanner) (*Entry, error) {
	e := &Entry{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			e.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			e.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			e.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			e.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			r, err := parseResult(line)
			if err != nil {
				return nil, err
			}
			e.Results = append(e.Results, *r)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(e.Results) == 0 {
		return nil, errors.New("no benchmark result lines on stdin")
	}
	return e, nil
}

// parseResult parses one line of the form
//
//	BenchmarkName-8   12345   678.9 ns/op   100 B/op   3 allocs/op
//
// where the -procs suffix and the B/op and allocs/op columns are optional.
func parseResult(line string) (*Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return nil, fmt.Errorf("short benchmark line: %q", line)
	}
	r := &Result{Name: fields[0], Procs: 1}
	if i := strings.LastIndexByte(r.Name, '-'); i >= 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Procs = p
			r.Name = r.Name[:i]
		}
	}
	var err error
	if r.Iterations, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
		return nil, fmt.Errorf("bad iteration count in %q: %w", line, err)
	}
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if r.NsPerOp, err = strconv.ParseFloat(val, 64); err != nil {
				return nil, fmt.Errorf("bad ns/op in %q: %w", line, err)
			}
		case "B/op":
			if r.BytesPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return nil, fmt.Errorf("bad B/op in %q: %w", line, err)
			}
		case "allocs/op":
			if r.AllocsPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return nil, fmt.Errorf("bad allocs/op in %q: %w", line, err)
			}
		default:
			// A custom b.ReportMetric column; keep it under its unit so
			// trajectories can track memory/ratio metrics the standard
			// columns don't cover.
			if v, perr := strconv.ParseFloat(val, 64); perr == nil {
				if r.Extra == nil {
					r.Extra = make(map[string]float64)
				}
				r.Extra[unit] = v
			}
		}
	}
	return r, nil
}
