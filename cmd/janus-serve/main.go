// Command janus-serve is a long-running multi-tenant transaction service
// over the JANUS runtime: clients POST batched transactional workloads to
// /submit and each tenant gets its own runner, committed state, spec
// cache handle, flight recorder, and health governor. Admission control
// follows the governor — full parallel admission while healthy, a reduced
// in-flight cap while degraded, and a serialized (or shedding) window
// while tripped — with typed, retryable 429/503 replies carrying
// Retry-After hints.
//
// Endpoints:
//
//	POST /submit?tenant=NAME    submit a batch (or X-Janus-Tenant header)
//	GET  /healthz               service + per-tenant health
//	GET  /varz                  expvar (includes per-tenant governors)
//	GET  /statez?tenant=NAME    committed values + state digest
//	GET  /journalz?tenant=NAME  applied batch IDs in order
//	GET  /timeline?tenant=NAME  NDJSON event stream (&follow=1 to tail)
//
// Shutdown: SIGTERM/SIGINT stops intake (new submits shed with a typed
// 503 "draining"), drains in-flight batches under -drain-timeout, and
// exits 0. If the drain deadline expires, the per-tenant flight-recorder
// rings are dumped to -flight-dir and the process exits 1 — the dumps are
// replayable with janus-replay.
//
// Drive it with the janus-bench load generator:
//
//	janus-serve -addr :8085 &
//	janus-bench -serve http://127.0.0.1:8085 -serve-clients 4
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	janus "repro"
	"repro/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8085", "listen address")
		threads      = flag.Int("threads", 0, "worker threads per tenant runner (0 = GOMAXPROCS)")
		detector     = flag.String("detector", "seq", "conflict detector: seq or ws")
		learn        = flag.Bool("learn-online", true, "prove and cache commutativity conditions at detection time (online training)")
		maxTenants   = flag.Int("max-tenants", 0, "tenant namespace bound (0 = default)")
		maxInflight  = flag.Int("max-inflight", 0, "per-tenant in-flight cap while healthy (0 = default)")
		degInflight  = flag.Int("degraded-inflight", 0, "per-tenant in-flight cap while degraded (0 = MaxInflight/4)")
		trippedShed  = flag.Bool("tripped-shed", false, "shed every submit while tripped instead of serializing one at a time")
		retryBudget  = flag.Int("retry-budget", 0, "per-task speculation retry budget (0 = default)")
		defDeadline  = flag.Duration("default-deadline", 0, "deadline for batches that declare none (0 = default 10s)")
		maxDeadline  = flag.Duration("max-deadline", 0, "cap on client-declared deadlines (0 = default 60s)")
		backoffBase  = flag.Duration("backoff", time.Millisecond, "base of the bounded exponential retry backoff")
		backoffMax   = flag.Duration("backoff-max", 32*time.Millisecond, "cap of the retry backoff")
		flightChunks = flag.Int("flight-chunks", 0, "flight-recorder ring size in sealed chunks per tenant (0 = default)")
		flightDir    = flag.String("flight-dir", ".", "directory for flight-recorder dumps on abnormal exit")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "budget for draining in-flight batches on shutdown")
		governWindow = flag.Int("govern-window", 0, "governor evaluation window in detections (0 = default)")
	)
	flag.Parse()

	rcfg := janus.Config{
		Threads:     *threads,
		LearnOnline: *learn,
		Backoff:     janus.Backoff{Base: *backoffBase, Max: *backoffMax},
		Governor:    janus.GovernorConfig{Window: *governWindow},
	}
	switch *detector {
	case "seq":
		rcfg.Detection = janus.DetectSequence
	case "ws":
		rcfg.Detection = janus.DetectWriteSet
	default:
		log.Fatalf("janus-serve: unknown -detector %q (want seq or ws)", *detector)
	}

	srv := serve.NewServer(serve.Config{
		Runner:           rcfg,
		MaxTenants:       *maxTenants,
		MaxInflight:      *maxInflight,
		DegradedInflight: *degInflight,
		TrippedShed:      *trippedShed,
		RetryBudget:      *retryBudget,
		DefaultDeadline:  *defDeadline,
		MaxDeadline:      *maxDeadline,
		FlightChunks:     *flightChunks,
	})
	serve.PublishVars("janus.serve", srv)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("janus-serve: listen %s: %v", *addr, err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	log.Printf("janus-serve: listening on %s (detector=%s threads=%d)", ln.Addr(), *detector, *threads)

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)

	select {
	case err := <-serveErr:
		// The listener died out from under us: dump state and fail.
		log.Printf("janus-serve: serve error: %v", err)
		dumpFlight(srv, *flightDir)
		os.Exit(1)
	case sig := <-sigc:
		log.Printf("janus-serve: %s: draining (budget %s)", sig, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("janus-serve: drain failed: %v; dumping flight recorders", err)
		dumpFlight(srv, *flightDir)
		os.Exit(1)
	}
	// In-flight work is done; close the listener and any idle or
	// streaming connections. A straggling timeline follower must not
	// outlive the drain budget, so fall back to a hard close.
	sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer scancel()
	if err := hs.Shutdown(sctx); err != nil {
		_ = hs.Close()
	}
	log.Printf("janus-serve: drained cleanly")
}

// dumpFlight writes every tenant's flight-recorder ring for post-mortem
// replay; best-effort on the abnormal-exit path.
func dumpFlight(s *serve.Server, dir string) {
	paths, err := s.DumpFlight(dir)
	if err != nil {
		log.Printf("janus-serve: flight dump: %v", err)
	}
	for _, p := range paths {
		fmt.Fprintf(os.Stderr, "janus-serve: flight recorder dumped to %s (replay with janus-replay)\n", p)
	}
}
