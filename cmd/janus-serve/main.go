// Command janus-serve is a long-running multi-tenant transaction service
// over the JANUS runtime: clients POST batched transactional workloads to
// /submit and each tenant gets its own runner, committed state, spec
// cache handle, flight recorder, and health governor. Admission control
// follows the governor — full parallel admission while healthy, a reduced
// in-flight cap while degraded, and a serialized (or shedding) window
// while tripped — with typed, retryable 429/503 replies carrying
// Retry-After hints.
//
// Endpoints:
//
//	POST /submit?tenant=NAME    submit a batch (or X-Janus-Tenant header)
//	GET  /healthz               service + per-tenant health
//	GET  /varz                  expvar (includes per-tenant governors)
//	GET  /statez?tenant=NAME    committed values + state digest
//	GET  /journalz?tenant=NAME  applied batch IDs in order
//	GET  /timeline?tenant=NAME  NDJSON event stream (&follow=1 to tail)
//
// Shutdown: SIGTERM/SIGINT stops intake (new submits shed with a typed
// 503 "draining"), drains in-flight batches under -drain-timeout, and
// exits 0. If the drain deadline expires, the per-tenant flight-recorder
// rings are dumped to -flight-dir and the process exits 1 — the dumps are
// replayable with janus-replay.
//
// Durability: with -data-dir set, every tenant keeps a write-ahead
// journal appended before a batch is acked, so an acked batch survives
// kill -9 (at -fsync always; see the policy table in DESIGN.md §13) and
// a restart replays the journal through the sequential oracle with
// per-record digest verification. Duplicate submits return their
// original verdict as a 409 across restarts. Background snapshots every
// -snapshot-every batches bound recovery and truncate covered segments;
// torn or corrupt journal tails are truncated and counted in /healthz.
//
// Drive it with the janus-bench load generator:
//
//	janus-serve -addr :8085 &
//	janus-bench -serve http://127.0.0.1:8085 -serve-clients 4
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	janus "repro"
	"repro/internal/serve"
	"repro/internal/wal"
)

func main() {
	var (
		addr         = flag.String("addr", ":8085", "listen address")
		threads      = flag.Int("threads", 0, "worker threads per tenant runner (0 = GOMAXPROCS)")
		detector     = flag.String("detector", "seq", "conflict detector: seq or ws")
		learn        = flag.Bool("learn-online", true, "prove and cache commutativity conditions at detection time (online training)")
		histComp     = flag.Bool("history-compress", false, "demote committed-history entries past the retention window to compressed records (per-tenant demotions/hist_bytes in /healthz and /varz)")
		compAft      = flag.Int("compress-after", 0, "history entries kept in full form before demotion under -history-compress (0 = default)")
		maxTenants   = flag.Int("max-tenants", 0, "tenant namespace bound (0 = default)")
		maxInflight  = flag.Int("max-inflight", 0, "per-tenant in-flight cap while healthy (0 = default)")
		degInflight  = flag.Int("degraded-inflight", 0, "per-tenant in-flight cap while degraded (0 = MaxInflight/4)")
		trippedShed  = flag.Bool("tripped-shed", false, "shed every submit while tripped instead of serializing one at a time")
		retryBudget  = flag.Int("retry-budget", 0, "per-task speculation retry budget (0 = default)")
		defDeadline  = flag.Duration("default-deadline", 0, "deadline for batches that declare none (0 = default 10s)")
		maxDeadline  = flag.Duration("max-deadline", 0, "cap on client-declared deadlines (0 = default 60s)")
		backoffBase  = flag.Duration("backoff", time.Millisecond, "base of the bounded exponential retry backoff")
		backoffMax   = flag.Duration("backoff-max", 32*time.Millisecond, "cap of the retry backoff")
		flightChunks = flag.Int("flight-chunks", 0, "flight-recorder ring size in sealed chunks per tenant (0 = default)")
		flightDir    = flag.String("flight-dir", ".", "directory for flight-recorder dumps on abnormal exit")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "budget for draining in-flight batches on shutdown")
		governWindow = flag.Int("govern-window", 0, "governor evaluation window in detections (0 = default)")
		dataDir      = flag.String("data-dir", "", "directory for per-tenant durable journals; empty serves in-memory only")
		fsyncMode    = flag.String("fsync", "always", "journal fsync policy: always (ack => durable), group (interval fsync), never")
		fsyncIvl     = flag.Duration("fsync-interval", 0, "group-commit fsync cadence under -fsync group (0 = default 25ms)")
		segBytes     = flag.Int64("segment-bytes", 0, "journal segment rotation size (0 = default 4MiB)")
		snapEvery    = flag.Int("snapshot-every", 0, "snapshot + truncate cadence in applied batches per tenant (0 = default 1024, negative disables)")
		dedupWindow  = flag.Int("dedup-window", 0, "exactly-once retention: duplicate batch IDs are refused within this many most recent batches per tenant (0 = default 1048576, negative unbounded)")
		chaosCrash   = flag.String("chaos-crash", "", "kill the process at the Nth visit of a wal crash point, as point:N (e.g. wal.append.after:100); testing only")
	)
	flag.Parse()

	rcfg := janus.Config{
		Threads:         *threads,
		LearnOnline:     *learn,
		HistoryCompress: *histComp,
		CompressAfter:   *compAft,
		Backoff:         janus.Backoff{Base: *backoffBase, Max: *backoffMax},
		Governor:        janus.GovernorConfig{Window: *governWindow},
	}
	switch *detector {
	case "seq":
		rcfg.Detection = janus.DetectSequence
	case "ws":
		rcfg.Detection = janus.DetectWriteSet
	default:
		log.Fatalf("janus-serve: unknown -detector %q (want seq or ws)", *detector)
	}

	policy, err := wal.ParsePolicy(*fsyncMode)
	if err != nil {
		log.Fatalf("janus-serve: %v", err)
	}
	srv := serve.NewServer(serve.Config{
		Runner:           rcfg,
		MaxTenants:       *maxTenants,
		MaxInflight:      *maxInflight,
		DegradedInflight: *degInflight,
		TrippedShed:      *trippedShed,
		RetryBudget:      *retryBudget,
		DefaultDeadline:  *defDeadline,
		MaxDeadline:      *maxDeadline,
		FlightChunks:     *flightChunks,
		DataDir:          *dataDir,
		Fsync:            policy,
		FsyncInterval:    *fsyncIvl,
		SegmentBytes:     *segBytes,
		SnapshotEvery:    *snapEvery,
		DedupWindow:      *dedupWindow,
		CrashHook:        crashHook(*chaosCrash),
	})
	serve.PublishVars("janus.serve", srv)
	if *dataDir != "" {
		names, rerr := srv.RecoverTenants()
		if rerr != nil {
			log.Fatalf("janus-serve: boot recovery failed: %v", rerr)
		}
		log.Printf("janus-serve: durable (data-dir=%s fsync=%s); recovered %d tenant(s) %v",
			*dataDir, policy, len(names), names)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("janus-serve: listen %s: %v", *addr, err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	log.Printf("janus-serve: listening on %s (detector=%s threads=%d)", ln.Addr(), *detector, *threads)

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)

	select {
	case err := <-serveErr:
		// The listener died out from under us: dump state and fail.
		log.Printf("janus-serve: serve error: %v", err)
		dumpFlight(srv, *flightDir)
		os.Exit(1)
	case sig := <-sigc:
		log.Printf("janus-serve: %s: draining (budget %s)", sig, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("janus-serve: drain failed: %v; dumping flight recorders", err)
		dumpFlight(srv, *flightDir)
		os.Exit(1)
	}
	// In-flight work is done: a final journal sync + close makes the
	// planned shutdown durable under every fsync policy.
	if err := srv.CloseJournals(); err != nil {
		log.Printf("janus-serve: closing journals: %v", err)
	}
	// Close the listener and any idle or streaming connections. A
	// straggling timeline follower must not outlive the drain budget, so
	// fall back to a hard close.
	sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer scancel()
	if err := hs.Shutdown(sctx); err != nil {
		_ = hs.Close()
	}
	log.Printf("janus-serve: drained cleanly")
}

// crashHook arms a real kill at the Nth visit of one wal crash point
// ("point:N"). Unlike the in-process poison hook the soak tests use,
// the daemon dies for real — SIGKILL semantics, page cache survives —
// which is what the crash-matrix smoke script exercises.
func crashHook(spec string) wal.Hook {
	if spec == "" {
		return nil
	}
	i := strings.LastIndex(spec, ":")
	if i <= 0 {
		log.Fatalf("janus-serve: -chaos-crash wants point:N, got %q", spec)
	}
	point := spec[:i]
	n, err := strconv.ParseInt(spec[i+1:], 10, 64)
	if err != nil || n <= 0 {
		log.Fatalf("janus-serve: -chaos-crash count in %q: want a positive integer", spec)
	}
	var visits atomic.Int64
	return func(p string) bool {
		if p != point {
			return false
		}
		if visits.Add(1) == n {
			log.Printf("janus-serve: chaos crash at %s (visit %d); dying", point, n)
			os.Exit(137)
		}
		return false
	}
}

// dumpFlight writes every tenant's flight-recorder ring for post-mortem
// replay; best-effort on the abnormal-exit path.
func dumpFlight(s *serve.Server, dir string) {
	paths, err := s.DumpFlight(dir)
	if err != nil {
		log.Printf("janus-serve: flight dump: %v", err)
	}
	for _, p := range paths {
		fmt.Fprintf(os.Stderr, "janus-serve: flight recorder dumped to %s (replay with janus-replay)\n", p)
	}
}
