GO ?= go

.PHONY: all vet build test race check bench trace clean

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Short race job over the concurrency-heavy packages (mirrors CI).
race:
	$(GO) test -race -count=1 . ./internal/stm ./internal/conflict ./internal/obs ./internal/cache ./internal/vtime

check: vet build test race

bench:
	$(GO) run ./cmd/janus-bench

# Capture a Chrome trace of one production run (open in ui.perfetto.dev).
trace:
	$(GO) run ./cmd/janus-bench -trace out.json -workloads jfilesync

clean:
	rm -f out.json
