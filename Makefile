GO ?= go

.PHONY: all vet build test race check bench bench-contention bench-detect bench-commit bench-oplog bench-governor bench-journal chaos soak serve-smoke crash-matrix trace record-replay clean

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Short race job over the concurrency-heavy packages (mirrors CI).
race:
	$(GO) test -race -count=1 . ./internal/stm ./internal/conflict ./internal/oplog ./internal/obs ./internal/cache ./internal/vtime ./internal/rec ./internal/serve ./internal/health ./internal/wal ./internal/fsio

# Short chaos soak under the race detector (mirrors CI): fault-injected
# runs whose final state is checked against the sequential oracle.
chaos:
	$(GO) test -race -count=1 -run Chaos ./internal/...

# Long soak: many more seeds per configuration. Not part of `check`; run
# before releases or when touching the STM commit path.
# (The test-binary flag must follow the package list, or go test treats
# the remaining arguments as packages of the current directory.)
soak:
	$(GO) test -race -count=1 -run Chaos -timeout 30m ./internal/chaos -chaos.seeds=200

# Serving-layer integration smoke, two phases: (1) in-memory load +
# exactly-once journal + sequential-oracle digest verification + clean
# SIGTERM drain; (2) durable journal, armed mid-load kill (SIGKILL
# semantics), restart on the same data dir, restart-aware resume
# verification. Nonzero exit on any lost/duplicated batch, digest
# mismatch, lost acked write, or hung drain.
serve-smoke:
	sh scripts/serve-smoke.sh

# Durability crash matrix against the real daemon: every wal crash point
# x fsync policy, each case armed to os.Exit mid-protocol, restarted on
# its data dir, and verified with the restart-aware loadgen. Used by the
# nightly workflow; per-push CI runs the cheaper in-process
# TestCrashRecoverySoak plus serve-smoke instead.
crash-matrix:
	sh scripts/crash-matrix.sh

check: vet build test race chaos serve-smoke

bench:
	$(GO) run ./cmd/janus-bench

# Contention benchmarks for the sharded cache and the detection loop,
# swept across GOMAXPROCS. Output lands in bench-contention.txt so CI can
# upload it as an artifact; informational, not gating.
bench-contention:
	$(GO) test -run '^$$' -bench 'BenchmarkLookupParallel|BenchmarkDetectHighContention' \
		-benchmem -cpu 1,4,8 ./internal/cache ./internal/conflict | tee bench-contention.txt

# Detection-path benchmark trajectory: runs the prepared-projection
# benchmarks (sequential, parallel, high-contention, plus the DetectV
# legacy shims) and folds the numbers into BENCH_detect.json under the
# "after" label. The "before" entry preserves the pre-projection baseline
# and is never overwritten by this target. Informational, not gating.
bench-detect:
	$(GO) test -run '^$$' -bench 'BenchmarkDetect' -benchmem -cpu 1,4 \
		./internal/conflict | tee bench-detect.txt
	$(GO) run ./cmd/janus-benchjson -file BENCH_detect.json -label after < bench-detect.txt

# Commit-path benchmark trajectory: the striped-commit throughput
# benchmarks (disjoint-footprint workload; persistent, copy, and ordered
# variants) folded into BENCH_commit.json under the "after" label. The
# "before" entry preserves the single-global-lock baseline and is never
# overwritten by this target. Informational, not gating.
bench-commit:
	$(GO) test -run '^$$' -bench 'BenchmarkCommitParallel' -benchmem -cpu 8 \
		./internal/stm | tee bench-commit.txt
	$(GO) run ./cmd/janus-benchjson -file BENCH_commit.json -label after < bench-commit.txt

# Streaming/compression benchmark trajectory: streaming decomposition
# vs the materializing shim, large-transaction detection (live-B records
# what each artifact form keeps retained), and the compressed-history
# window, folded into BENCH_oplog.json under the "after" label. The
# "before" entry preserves the materialize-everything baseline and is
# never overwritten by this target. Informational, not gating.
bench-oplog:
	$(GO) test -run '^$$' -bench 'BenchmarkDecompose|BenchmarkDetectLargeTxn' \
		-benchmem ./internal/oplog ./internal/conflict | tee bench-oplog.txt
	$(GO) test -run '^$$' -bench 'BenchmarkHistoryCompressed' -benchmem \
		./internal/stm | tee -a bench-oplog.txt
	$(GO) run ./cmd/janus-benchjson -file BENCH_oplog.json -label after < bench-oplog.txt

# Governed chaos bench: one fault-injected run per workload with the
# health governor attached; the JSON report records governor_state,
# demotions, and the full health snapshot. Used by the nightly workflow;
# informational, not gating.
bench-governor:
	$(GO) run ./cmd/janus-bench -json -govern -govern-window 8 -chaos 42 \
		-workloads jfilesync,pmd > BENCH_governor.json

# Journal append-latency trajectory: BenchmarkJournalAppend across the
# three fsync policies (never / group / always — the price of the
# ack => durable contract is the fsync in the append path), folded into
# BENCH_serve.json. Used by the nightly workflow; informational, not
# gating.
bench-journal:
	$(GO) test -run '^$$' -bench BenchmarkJournalAppend -benchmem \
		./internal/wal | tee bench-journal.txt
	$(GO) run ./cmd/janus-benchjson -file BENCH_serve.json -label journal-append \
		< bench-journal.txt

# Capture a Chrome trace of one production run (open in ui.perfetto.dev).
trace:
	$(GO) run ./cmd/janus-bench -trace out.json -workloads jfilesync

# Record/replay round trip: capture a chaos-perturbed governed run as a
# binary op trace, deterministically replay it (janus-replay exits nonzero
# on any digest mismatch), and fold the replay timings plus the recording
# overhead benchmark into BENCH_replay.json. Used by the nightly workflow;
# the replay step IS gating — a mismatch means lost determinism.
record-replay:
	$(GO) run ./cmd/janus-bench -json -chaos 42 -govern -govern-window 8 \
		-record janus.trace -workloads jfilesync > /dev/null
	$(GO) run ./cmd/janus-replay -json -verify-ops janus.trace | \
		$(GO) run ./cmd/janus-benchjson -reports -file BENCH_replay.json -label replay
	$(GO) test -run '^$$' -bench BenchmarkRecord -benchmem ./internal/rec | \
		tee record-overhead.txt
	$(GO) run ./cmd/janus-benchjson -file BENCH_replay.json -label record-overhead \
		< record-overhead.txt

clean:
	rm -f out.json bench-contention.txt bench-commit.txt bench-oplog.txt BENCH_governor.json janus.trace record-overhead.txt bench-journal.txt
