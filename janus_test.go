package janus

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/obs"
	"time"
)

func exampleState() *State {
	st := NewState()
	InitCounter(st, "work", 0)
	InitStack(st, "stack")
	InitStrVar(st, "name", "")
	InitBoolVar(st, "flag", false)
	InitBitSet(st, "bits")
	InitKVMap(st, "map")
	InitIntArray(st, "arr")
	InitCanvas(st, "canvas")
	return st
}

func identityTask(n int64) Task {
	return func(ex Executor) error {
		c := Counter{L: "work"}
		if err := c.Add(ex, n); err != nil {
			return err
		}
		return c.Sub(ex, n)
	}
}

func addTask(n int64) Task {
	return func(ex Executor) error {
		return Counter{L: "work"}.Add(ex, n)
	}
}

func TestInitHelpersBindLocations(t *testing.T) {
	st := exampleState()
	if st.Len() != 8 {
		t.Fatalf("Len = %d, want 8", st.Len())
	}
	seq, err := Sequential(st, []Task{func(ex Executor) error {
		if err := (Stack{L: "stack"}).Push(ex, 1); err != nil {
			return err
		}
		if err := (StrVar{L: "name"}).Store(ex, "x"); err != nil {
			return err
		}
		if err := (BoolVar{L: "flag"}).Store(ex, true); err != nil {
			return err
		}
		if err := (BitSet{L: "bits"}).Set(ex, 3); err != nil {
			return err
		}
		if err := (KVMap{L: "map"}).Put(ex, "k", "v"); err != nil {
			return err
		}
		if err := (IntArray{L: "arr"}).Set(ex, 0, 9); err != nil {
			return err
		}
		return (Canvas{L: "canvas"}).DrawPixel(ex, 1, 2, "red")
	}})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := seq.Get("name"); !ok || v.String() != "x" {
		t.Errorf("name = %v", v)
	}
}

func TestTrainThenRun(t *testing.T) {
	st := exampleState()
	var tasks []Task
	for i := 1; i <= 10; i++ {
		tasks = append(tasks, identityTask(int64(i)))
	}
	r := New(Config{Threads: 4, Detection: DetectSequence})
	if err := r.Train(st, tasks[:3]); err != nil {
		t.Fatal(err)
	}
	if len(r.TrainingReports()) != 1 {
		t.Fatalf("reports = %d", len(r.TrainingReports()))
	}
	final, stats, err := r.Run(st, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := final.Get("work"); v.String() != "0" {
		t.Fatalf("work = %v", v)
	}
	if stats.Run.Commits != 10 {
		t.Fatalf("commits = %d", stats.Run.Commits)
	}
	if stats.Run.Retries != 0 {
		t.Fatalf("identity tasks must not retry under sequence detection, got %d", stats.Run.Retries)
	}
}

func TestFreezeAfterTraining(t *testing.T) {
	st := exampleState()
	var tasks []Task
	for i := 1; i <= 10; i++ {
		tasks = append(tasks, identityTask(int64(i)))
	}
	r := New(Config{Threads: 4, Detection: DetectSequence, CacheShards: 4})
	if err := r.Train(st, tasks[:3]); err != nil {
		t.Fatal(err)
	}
	entries := r.CacheStats().Entries
	if entries == 0 {
		t.Fatal("training produced no cache entries")
	}
	var spec bytes.Buffer
	if err := r.SaveSpec(&spec); err != nil {
		t.Fatal(err)
	}
	r.Freeze()
	_, stats, err := r.Run(st, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Run.Commits != 10 || stats.Run.Retries != 0 {
		t.Fatalf("frozen run: commits=%d retries=%d", stats.Run.Commits, stats.Run.Retries)
	}
	if err := r.LoadSpec(bytes.NewReader(spec.Bytes())); err == nil {
		t.Fatal("LoadSpec into a frozen runner must fail")
	}
	if got := r.CacheStats().Entries; got != entries {
		t.Fatalf("frozen cache contents changed: %d -> %d entries", entries, got)
	}

	// LearnOnline runners must stay writable: Freeze is a no-op there.
	lo := New(Config{Threads: 2, Detection: DetectSequence, LearnOnline: true})
	lo.Freeze()
	if err := lo.LoadSpec(bytes.NewReader(spec.Bytes())); err != nil {
		t.Fatalf("LoadSpec after no-op Freeze: %v", err)
	}
	if _, _, err := lo.Run(exampleState(), tasks[:4]); err != nil {
		t.Fatal(err)
	}
}

func TestRunInOrderPreservesOrder(t *testing.T) {
	st := exampleState()
	push := func(v int64) Task {
		return func(ex Executor) error { return Stack{L: "stack"}.Push(ex, v) }
	}
	tasks := []Task{push(1), push(2), push(3), push(4)}
	r := New(Config{Threads: 4, Detection: DetectWriteSet})
	final, _, err := r.RunInOrder(st, tasks)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := final.Get("stack")
	if v.String() != "[1 2 3 4]" {
		t.Fatalf("stack = %v", v)
	}
}

func TestWriteSetConfigUsesBaselineDetector(t *testing.T) {
	st := exampleState()
	r := New(Config{Threads: 2, Detection: DetectWriteSet})
	_, stats, err := r.RunOutOfOrder(st, []Task{addTask(1), addTask(2)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Detector.Detections == 0 {
		t.Fatalf("write-set detector not consulted")
	}
}

func TestCacheStatsAndReset(t *testing.T) {
	st := exampleState()
	var tasks []Task
	for i := 1; i <= 6; i++ {
		tasks = append(tasks, identityTask(int64(i)))
	}
	r := New(Config{Threads: 1})
	if err := r.Train(st, tasks[:2]); err != nil {
		t.Fatal(err)
	}
	if r.CacheStats().Entries == 0 {
		t.Fatalf("training produced no cache entries")
	}
	r.ResetCacheStats()
	if s := r.CacheStats(); s.Lookups != 0 {
		t.Fatalf("stats not reset: %+v", s)
	}
}

func TestDisableAbstraction(t *testing.T) {
	st := exampleState()
	abs := New(Config{})
	conc := New(Config{DisableAbstraction: true})
	// Three tasks whose identity sequences have different lengths (1, 2,
	// and 3 add/sub pairs): under abstraction all collapse to one
	// pattern, so the three trained pairs share a single cache entry;
	// without it each length combination is a separate entry.
	repeated := func(n int) Task {
		return func(ex Executor) error {
			for i := 1; i <= n; i++ {
				if err := identityTask(int64(i))(ex); err != nil {
					return err
				}
			}
			return nil
		}
	}
	payload := []Task{repeated(1), repeated(2), repeated(3)}
	for _, r := range []*Runner{abs, conc} {
		if err := r.Train(st, payload); err != nil {
			t.Fatal(err)
		}
	}
	// Both runners learned from the same payload; the abstract one has a
	// single unified identity pattern, the concrete one separates by
	// length.
	if abs.CacheStats().Entries >= conc.CacheStats().Entries {
		t.Fatalf("abstraction must unify entries: %d vs %d",
			abs.CacheStats().Entries, conc.CacheStats().Entries)
	}
}

func TestRelaxationsViaConfig(t *testing.T) {
	st := exampleState()
	scribble := func(v string) Task {
		return func(ex Executor) error {
			s := StrVar{L: "name"}
			if err := s.Store(ex, v); err != nil {
				return err
			}
			_, err := s.Load(ex)
			return err
		}
	}
	tasks := []Task{scribble("a"), scribble("b"), scribble("c"), scribble("d")}
	r := New(Config{
		Threads: 4,
		Relax:   NewRelaxations(nil, []Loc{"name"}),
	})
	_, stats, err := r.RunOutOfOrder(st, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Run.Retries != 0 {
		t.Fatalf("WAW-relaxed scratch writes must not retry, got %d", stats.Run.Retries)
	}
}

func TestMaxRetriesSurfaceInConfig(t *testing.T) {
	st := exampleState()
	r := New(Config{Threads: 1, MaxRetries: 2})
	if _, _, err := r.Run(st, []Task{addTask(1)}); err != nil {
		t.Fatalf("single task cannot exceed retries: %v", err)
	}
}

func TestDetectionString(t *testing.T) {
	if DetectSequence.String() != "sequence" || DetectWriteSet.String() != "write-set" {
		t.Errorf("detection strings wrong")
	}
}

func TestSequentialDoesNotMutateInput(t *testing.T) {
	st := exampleState()
	if _, err := Sequential(st, []Task{addTask(5)}); err != nil {
		t.Fatal(err)
	}
	if v, _ := st.Get("work"); v.String() != "0" {
		t.Fatalf("input state mutated: %v", v)
	}
}

func TestOnlineModeConfig(t *testing.T) {
	st := exampleState()
	var tasks []Task
	for i := 1; i <= 8; i++ {
		tasks = append(tasks, identityTask(int64(i)))
	}
	// No training at all: online mode must still admit identity pairs by
	// running the concrete Figure 8 check at runtime.
	r := New(Config{Threads: 4, Online: true})
	_, stats, err := r.RunOutOfOrder(st, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Run.Retries != 0 {
		t.Fatalf("online sequence checking must admit identity pairs, got %d retries", stats.Run.Retries)
	}
}

func TestLearnOnlineRunnerConverges(t *testing.T) {
	st := exampleState()
	var tasks []Task
	for i := 1; i <= 12; i++ {
		n := int64(i)
		tasks = append(tasks, func(ex Executor) error {
			c := Counter{L: "work"}
			if err := c.Add(ex, n); err != nil {
				return err
			}
			// Yield so transactions overlap even on a single-core host,
			// forcing real conflict queries.
			time.Sleep(200 * time.Microsecond)
			return c.Sub(ex, n)
		})
	}
	// No Train call at all: the runner learns conditions at runtime.
	r := New(Config{Threads: 4, LearnOnline: true})
	final, stats, err := r.RunOutOfOrder(st, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := final.Get("work"); v.String() != "0" {
		t.Fatalf("work = %v", v)
	}
	if stats.Run.Retries != 0 {
		t.Fatalf("online learning must admit identity pairs immediately, got %d retries", stats.Run.Retries)
	}
	if stats.Detector.PairQueries > 0 && r.CacheStats().Entries == 0 {
		t.Fatalf("online learning must populate the cache (queries=%d)", stats.Detector.PairQueries)
	}
}

func TestInferWAWOrderedEqualsSequential(t *testing.T) {
	st := exampleState()
	scribble := func(v string) Task {
		return func(ex Executor) error {
			s := StrVar{L: "name"}
			if err := s.Store(ex, v); err != nil {
				return err
			}
			_, err := s.Load(ex)
			return err
		}
	}
	tasks := []Task{scribble("a"), scribble("b"), scribble("c"), scribble("d")}
	want, err := Sequential(st, tasks)
	if err != nil {
		t.Fatal(err)
	}
	r := New(Config{Threads: 4, InferWAW: true})
	final, stats, err := r.RunInOrder(st, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Run.Retries != 0 {
		t.Fatalf("InferWAW must suppress the WAW aborts, got %d retries", stats.Run.Retries)
	}
	if !final.Equal(want) {
		t.Fatalf("ordered InferWAW run must equal the sequential state:\ngot  %s\nwant %s", final, want)
	}
}

func TestInferWAWUnorderedIsCommitOrderSerial(t *testing.T) {
	st := exampleState()
	scribble := func(v string) Task {
		return func(ex Executor) error {
			s := StrVar{L: "name"}
			if err := s.Store(ex, v); err != nil {
				return err
			}
			got, err := s.Load(ex)
			if err != nil {
				return err
			}
			if got != v {
				t.Errorf("task read %q after storing %q", got, v)
			}
			return nil
		}
	}
	vals := []string{"a", "b", "c", "d", "e"}
	var tasks []Task
	for _, v := range vals {
		tasks = append(tasks, scribble(v))
	}
	r := New(Config{Threads: 4, InferWAW: true})
	final, _, err := r.RunOutOfOrder(st, tasks)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := final.Get("name")
	ok := false
	for _, v := range vals {
		if got.String() == v {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("final name %v is not any task's store", got)
	}
}

func TestSpecSaveLoadAcrossRunners(t *testing.T) {
	st := exampleState()
	var tasks []Task
	for i := 1; i <= 8; i++ {
		tasks = append(tasks, identityTask(int64(i)))
	}
	trainer := New(Config{})
	if err := trainer.Train(st, tasks[:3]); err != nil {
		t.Fatal(err)
	}
	var spec bytes.Buffer
	if err := trainer.SaveSpec(&spec); err != nil {
		t.Fatal(err)
	}
	// A fresh production runner loads the shipped spec instead of
	// training.
	prod := New(Config{Threads: 4})
	if err := prod.LoadSpec(bytes.NewReader(spec.Bytes())); err != nil {
		t.Fatal(err)
	}
	if prod.CacheStats().Entries == 0 {
		t.Fatalf("loaded spec is empty")
	}
	final, stats, err := prod.RunOutOfOrder(st, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := final.Get("work"); v.String() != "0" {
		t.Fatalf("work = %v", v)
	}
	if stats.Run.Retries != 0 {
		t.Fatalf("loaded spec must admit identity pairs, got %d retries", stats.Run.Retries)
	}
	// Mode mismatch is rejected.
	other := New(Config{DisableAbstraction: true})
	if err := other.LoadSpec(bytes.NewReader(spec.Bytes())); err == nil {
		t.Fatalf("abstraction-mode mismatch must be rejected")
	}
}

func TestInitCustomADT(t *testing.T) {
	st := NewState()
	spec := CustomSpec{Columns: []string{"host", "port", "status"}, Domain: []string{"host", "port"}}
	obj, err := InitCustom(st, "endpoints", spec)
	if err != nil {
		t.Fatal(err)
	}
	task := func(status string) Task {
		return func(ex Executor) error {
			if err := obj.Put(ex, Tuple{"host": "db", "port": "5432", "status": status}); err != nil {
				return err
			}
			_, _, err := obj.Get(ex, Tuple{"host": "db", "port": "5432"})
			return err
		}
	}
	tasks := []Task{task("up"), task("up"), task("up"), task("up")}
	r := New(Config{Threads: 4})
	if err := r.Train(st, tasks[:2]); err != nil {
		t.Fatal(err)
	}
	final, stats, err := r.RunOutOfOrder(st, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Run.Retries != 0 {
		t.Fatalf("equal-writes custom ADT must not retry, got %d", stats.Run.Retries)
	}
	seqFinal, err := Sequential(st, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if !final.Equal(seqFinal) {
		t.Fatalf("custom ADT run diverged from sequential")
	}
	if _, err := InitCustom(st, "bad", CustomSpec{}); err == nil {
		t.Fatalf("invalid spec must be rejected")
	}
}

// TestTracedRunProducesTimeline runs a contended parallel workload with
// a Trace attached and checks the end-to-end observability path: the
// timeline comes back in RunStats, task spans are attributed to workers,
// aborts carry a reason and location, the abort-reason breakdown in
// stm.Stats agrees with the trace, and the Chrome exporter accepts it.
func TestTracedRunProducesTimeline(t *testing.T) {
	st := exampleState()
	var tasks []Task
	for i := 1; i <= 32; i++ {
		tasks = append(tasks, addTask(int64(i)))
	}
	tr := NewTrace(0)
	r := New(Config{Threads: 4, Detection: DetectWriteSet, Trace: tr})
	_, stats, err := r.RunOutOfOrder(st, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Timeline) == 0 {
		t.Fatal("traced run returned an empty timeline")
	}
	var taskSpans, aborts int64
	for _, e := range stats.Timeline {
		switch e.Type {
		case obs.EvTask:
			taskSpans++
			if e.Worker < 0 || e.Dur <= 0 {
				t.Fatalf("task span missing attribution: %+v", e)
			}
		case obs.EvTxAbort:
			aborts++
			if e.Reason == "" || e.Loc == "" {
				t.Fatalf("abort without reason/location: %+v", e)
			}
		}
	}
	if taskSpans != int64(stats.Run.Commits) {
		t.Fatalf("task spans = %d, commits = %d", taskSpans, stats.Run.Commits)
	}
	var reasonTotal int64
	for _, n := range stats.Run.AbortReasons {
		reasonTotal += n
	}
	if reasonTotal != stats.Run.Conflicts {
		t.Fatalf("abort reasons sum to %d, conflicts = %d", reasonTotal, stats.Run.Conflicts)
	}
	if aborts != stats.Run.Conflicts {
		t.Fatalf("abort events = %d, conflicts = %d", aborts, stats.Run.Conflicts)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty Chrome trace")
	}
}

func TestRunCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := New(Config{Detection: DetectWriteSet})
	_, _, err := r.RunCtx(ctx, exampleState(), []Task{addTask(1), addTask(2)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	_, _, err = r.RunInOrderCtx(ctx, exampleState(), []Task{addTask(1)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ordered err = %v, want context.Canceled", err)
	}
	// An unexpired context runs to completion.
	live, liveCancel := context.WithTimeout(context.Background(), time.Minute)
	defer liveCancel()
	final, stats, err := r.RunCtx(live, exampleState(), []Task{addTask(1), addTask(2)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Run.Commits != 2 {
		t.Fatalf("commits = %d, want 2", stats.Run.Commits)
	}
	if v, _ := final.Get("work"); v.String() != "3" {
		t.Fatalf("work = %v, want 3", v)
	}
}

func TestPanicSurfacesAsError(t *testing.T) {
	r := New(Config{Detection: DetectWriteSet})
	_, _, err := r.Run(exampleState(), []Task{
		addTask(1),
		func(Executor) error { panic("client bug") },
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Task != 2 || pe.Value != "client bug" {
		t.Fatalf("PanicError = %+v", pe)
	}
}

// TestContentionKnobsSurfaceInConfig drives the public Backoff and
// SerializeAfter knobs end to end: under write-set detection, tasks that
// all mutate one counter contend; the knobs must keep the run correct and
// surface their accounting in RunStats.
func TestContentionKnobsSurfaceInConfig(t *testing.T) {
	r := New(Config{
		Detection:      DetectWriteSet,
		Threads:        4,
		Backoff:        Backoff{Base: 10 * time.Microsecond},
		SerializeAfter: 3,
	})
	var tasks []Task
	var want int64
	for i := 1; i <= 40; i++ {
		tasks = append(tasks, addTask(int64(i)))
		want += int64(i)
	}
	final, stats, err := r.Run(exampleState(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := final.Get("work"); v.String() != fmt.Sprint(want) {
		t.Fatalf("work = %v, want %d", v, want)
	}
	if stats.Run.Commits != 40 {
		t.Fatalf("commits = %d, want 40", stats.Run.Commits)
	}
	if stats.Run.RetryRatio() > 3 {
		t.Fatalf("retries/txn = %.2f, want <= SerializeAfter", stats.Run.RetryRatio())
	}
}
