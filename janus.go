// Package janus is a from-scratch Go reproduction of JANUS, the
// speculative parallelization system of Tripp, Manevich, Field, and Sagiv,
// "JANUS: Exploiting Parallelism via Hindsight" (PLDI 2012).
//
// JANUS runs client-provided tasks optimistically in parallel and detects
// conflicts between concurrent transactions by reasoning about entire
// sequences of operations and their composite effect — so a transaction
// that increments and later decrements a shared counter (net identity)
// does not conflict with another doing the same, where classical
// write-set detection would abort one of them. The expensive sequence
// judgments are made cheap by hindsight: commutativity conditions are
// learned offline from single-threaded training runs, generalized into
// regular forms via the Kleene-cross abstraction, and cached for O(1)
// lookup during parallel execution.
//
// # Quick start
//
//	st := janus.NewState()
//	workCtr := janus.InitCounter(st, "work", 0)
//
//	mkTask := func(w int64) janus.Task {
//		return func(ex janus.Executor) error {
//			if err := workCtr.Add(ex, w); err != nil {
//				return err
//			}
//			// ... process the item ...
//			return workCtr.Sub(ex, w) // processed: restore pending work
//		}
//	}
//
//	r := janus.New(janus.Config{Detection: janus.DetectSequence})
//	if err := r.Train(st, trainingTasks); err != nil { ... }
//	final, stats, err := r.RunOutOfOrder(st, productionTasks)
//
// See the examples directory for complete programs, and DESIGN.md for the
// mapping from the paper's sections to packages.
package janus

import (
	"context"
	"errors"
	"io"
	"sync"

	"repro/internal/adt"
	"repro/internal/cache"
	"repro/internal/conflict"
	"repro/internal/core"
	"repro/internal/health"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/relspec"
	"repro/internal/state"
	"repro/internal/stm"
	"repro/internal/train"
)

// Re-exported core types: tasks access shared state through typed handles
// bound to named locations, and every access is logged by the runtime for
// conflict detection and commit-time replay.
type (
	// Task is one unit of parallelizable work (a loop iteration).
	Task = adt.Task
	// Executor applies shared-state operations for a task.
	Executor = adt.Executor
	// State is the shared store.
	State = state.State
	// Loc names a shared location.
	Loc = state.Loc

	// Counter is a shared integer (identity/reduction patterns).
	Counter = adt.Counter
	// StrVar is a shared string (shared-as-local pattern).
	StrVar = adt.StrVar
	// BoolVar is a shared boolean.
	BoolVar = adt.BoolVar
	// Stack is a shared integer stack (balanced push/pop identity).
	Stack = adt.Stack
	// BitSet is a shared bit set with relational abstraction.
	BitSet = adt.BitSet
	// KVMap is a shared string map with relational abstraction.
	KVMap = adt.KVMap
	// IntArray is a shared integer array with relational abstraction.
	IntArray = adt.IntArray
	// Canvas is a shared pixel raster (equal-writes pattern).
	Canvas = adt.Canvas

	// Relaxations declares tolerable RAW/WAW conflicts per location (§5.3).
	Relaxations = conflict.Relaxations

	// Trace is a per-worker ring-buffer event recorder; pass one in
	// Config.Trace to capture a run's timeline, then export it with
	// WriteChromeJSON (opens in Perfetto / chrome://tracing).
	Trace = obs.Trace
	// TraceEvent is one recorded timeline entry.
	TraceEvent = obs.Event
	// AbortReason classifies why a detector rejected a transaction.
	AbortReason = conflict.Reason

	// Backoff configures bounded exponential retry backoff with jitter
	// between a transaction's abort and its next attempt; the zero value
	// retries immediately. See Config.Backoff.
	Backoff = stm.Backoff
	// PanicError is the error a recovered task panic converts to,
	// carrying the task id, panic value, and the stack captured at the
	// panic site. A panicking task fails the run with this error instead
	// of crashing the process; unwrap it with errors.As.
	PanicError = stm.PanicError
	// RetryLimitError is what a run fails with when one transaction
	// exhausts Config.MaxRetries. It marks retryable congestion — the
	// task body never failed, the liveness guard cut off its
	// speculation — so serving layers map it to "try again later"
	// rather than a permanent workload fault; unwrap it with errors.As.
	RetryLimitError = stm.RetryLimitError
	// CommitSink receives every committed transaction's operation log in
	// commit order (see Config.Record and internal/rec for the standard
	// implementation).
	CommitSink = stm.CommitSink
	// OplogBudgetError is what a transaction's Exec returns — and the run
	// fails with — once one task's operation log exceeds Config.MaxTxnOps;
	// unwrap it with errors.As.
	OplogBudgetError = stm.OplogBudgetError
	// SpecError reports a rejected trained-spec artifact (corruption,
	// version or abstraction-mode mismatch, unknown entries); LoadSpec
	// returns one, errors.As-matchable, for every artifact fault.
	SpecError = cache.SpecError

	// GovernorConfig tunes the Config.Govern health governor: window
	// size, demotion/trip/restore thresholds, probe cadence, and the
	// serial-commit recovery budget. The zero value uses sane defaults.
	GovernorConfig = health.Config
	// HealthStats is the governor's snapshot (state, transition counts,
	// last window rates); see RunStats.Health.
	HealthStats = health.Stats

	// CustomSpec declares a user-defined ADT's relational representation
	// (§6.1): arbitrary columns with an optional functional dependency
	// whose domain names the key columns.
	CustomSpec = relspec.Spec
	// CustomObject is the handle to a shared instance of a CustomSpec.
	CustomObject = relspec.Object
	// Tuple is a relational tuple (column → value).
	Tuple = relation.Tuple
)

// NewState returns an empty shared store.
func NewState() *State { return state.New() }

// NewTrace returns an event recorder whose per-worker ring buffers hold
// laneCap events each (a generous default when laneCap <= 0).
func NewTrace(laneCap int) *Trace { return obs.NewTrace(laneCap) }

// NewRelaxations builds a consistency-relaxation specification from the
// locations whose read-after-write (raw) and write-after-write (waw)
// conflicts are tolerable.
func NewRelaxations(raw, waw []Loc) *Relaxations {
	return conflict.NewRelaxations(raw, waw)
}

// InitCounter binds loc to the initial value and returns its handle.
func InitCounter(st *State, loc Loc, v int64) Counter {
	st.Set(loc, state.Int(v))
	return Counter{L: loc}
}

// InitStrVar binds loc to the initial value and returns its handle.
func InitStrVar(st *State, loc Loc, v string) StrVar {
	st.Set(loc, state.Str(v))
	return StrVar{L: loc}
}

// InitBoolVar binds loc to the initial value and returns its handle.
func InitBoolVar(st *State, loc Loc, v bool) BoolVar {
	st.Set(loc, state.Bool(v))
	return BoolVar{L: loc}
}

// InitStack binds loc to an empty stack and returns its handle.
func InitStack(st *State, loc Loc) Stack {
	st.Set(loc, state.IntList{})
	return Stack{L: loc}
}

// InitBitSet binds loc to an empty relational bit set and returns its
// handle.
func InitBitSet(st *State, loc Loc) BitSet {
	st.Set(loc, adt.NewRelValue())
	return BitSet{L: loc}
}

// InitKVMap binds loc to an empty relational map and returns its handle.
func InitKVMap(st *State, loc Loc) KVMap {
	st.Set(loc, adt.NewRelValue())
	return KVMap{L: loc}
}

// InitIntArray binds loc to an empty relational array and returns its
// handle (unset indices read as zero).
func InitIntArray(st *State, loc Loc) IntArray {
	st.Set(loc, adt.NewRelValue())
	return IntArray{L: loc}
}

// InitCanvas binds loc to an empty relational raster and returns its
// handle.
func InitCanvas(st *State, loc Loc) Canvas {
	st.Set(loc, adt.NewRelValue())
	return Canvas{L: loc}
}

// InitCustom binds loc to an empty instance of a user-defined relational
// ADT (§6.1) and returns its handle. The spec's columns and functional
// dependency define the structure's semantic state; its operations
// (Put/Get/Has/Delete/Clear) participate in sequence-based conflict
// detection exactly like the built-in ADTs.
func InitCustom(st *State, loc Loc, spec CustomSpec) (CustomObject, error) {
	return relspec.New(st, loc, spec)
}

// Detection selects the conflict-detection algorithm.
type Detection int

// Detection algorithms.
const (
	// DetectSequence is JANUS's sequence-based detection (§5).
	DetectSequence Detection = iota
	// DetectWriteSet is the traditional baseline.
	DetectWriteSet
)

// String renders the algorithm name.
func (d Detection) String() string {
	if d == DetectWriteSet {
		return "write-set"
	}
	return "sequence"
}

// Privatization selects the snapshot strategy of §4.1.
type Privatization = stm.Privatize

// Privatization modes.
const (
	// PrivatizeCopy deep-copies shared state at transaction begin.
	PrivatizeCopy = stm.PrivatizeCopy
	// PrivatizePersistent snapshots a fully persistent map in O(1).
	PrivatizePersistent = stm.PrivatizePersistent
)

// Config parameterizes a Runner.
type Config struct {
	// Threads is the worker count (0 = GOMAXPROCS).
	Threads int
	// Detection selects the conflict detector.
	Detection Detection
	// DisableAbstraction turns off the §5.2 Kleene-cross sequence
	// abstraction (the Figure 11 ablation); cache keys then require an
	// exact shape match.
	DisableAbstraction bool
	// Online answers cache misses with the concrete sequence check at
	// runtime instead of the write-set fallback (§5.3 alternative).
	Online bool
	// LearnOnline proves and caches commutativity conditions for missed
	// shape pairs at runtime — "online training" via memoization (§5.3) —
	// so an untrained Runner converges to trained behavior after one miss
	// per shape pair.
	LearnOnline bool
	// InferWAW enables §5.3's limited automatic inference: write-after-
	// write dependences between two transactions are ignored when every
	// read involved is order-insensitive. The final state is then the
	// commit-order serialization: identical to the sequential order under
	// RunInOrder, some legal serial order under RunOutOfOrder.
	InferWAW bool
	// Relax is the consistency-relaxation specification; may be nil.
	Relax *Relaxations
	// Privatize selects the snapshot strategy.
	Privatize Privatization
	// ReclaimLogs enables committed-history reclamation.
	ReclaimLogs bool
	// MaxRetries guards against livelock in tests (0 = unlimited).
	MaxRetries int
	// Backoff enables contention management: after an abort, the task
	// waits a bounded, jittered, exponentially growing interval before
	// retrying instead of immediately re-running speculation that is
	// likely to abort again. Zero retries immediately.
	Backoff Backoff
	// SerializeAfter escalates a transaction to irrevocable serial mode
	// after this many consecutive aborts: it takes the runtime's global
	// write lock, re-executes alone, and commits unconditionally, so
	// starving transactions are guaranteed progress under pathological
	// contention. 0 never escalates.
	SerializeAfter int
	// CacheShards sets the commutativity cache's shard count (rounded up
	// to a power of two; 0 = default). More shards cut lock contention
	// between concurrent detection queries during training and online
	// learning; frozen caches are lock-free regardless.
	CacheShards int
	// SkipTrainingVerify disables training-time verification (concrete
	// Figure 8 validation and SAT equivalence checks).
	SkipTrainingVerify bool
	// Govern enables the runtime health governor: the run's detector is
	// wrapped in a hysteresis state machine that demotes to write-set
	// detection when sliding-window cache-miss or abort rates cross the
	// GovernorConfig thresholds (probing its way back once conditions
	// clear) and escalates the whole run to serial execution when even
	// write-set detection thrashes. See RunStats.Health.
	Govern bool
	// Governor tunes the Govern state machine; the zero value uses the
	// internal/health defaults.
	Governor GovernorConfig
	// GovernPersist keeps one health governor alive across every run of
	// this Runner instead of building a fresh one per run. A long-lived
	// server wants this: sliding-window abort/miss rates, trip state, and
	// probe streaks then reflect the tenant's sustained traffic rather
	// than resetting on every batch, and Runner.Governor exposes the live
	// state machine for admission-control decisions. Requires Govern.
	GovernPersist bool
	// MaxHistory bounds the runtime's committed-history length: a commit
	// that would overflow the bound forces a reclamation pass and then
	// stalls until active transactions advance past the old entries.
	// Stats.MaxHist never exceeds it. 0 means unbounded.
	MaxHistory int
	// MaxTxnOps bounds a single transaction's operation log; an op past
	// the budget is refused with *OplogBudgetError. 0 means unlimited.
	MaxTxnOps int
	// HistoryCompress demotes committed-history entries that age out of
	// the recent window to compact compressed records: O(locations) bytes
	// per old entry instead of O(ops), so a large MaxHistory of heavy
	// transactions stays flat in memory. Detectors screen compressed
	// entries by footprint signature and decode only on overlap; the
	// optional Online concrete check degrades to the sound write-set
	// fallback against them. See RunStats.Run.Demotions/HistBytes.
	HistoryCompress bool
	// CompressAfter is the number of most-recent committed entries kept
	// in full form under HistoryCompress. 0 means the stm default
	// (stm.DefaultCompressAfter); ignored unless HistoryCompress is set.
	CompressAfter int
	// CommitStripes sets the runtime's commit-path location lock table
	// size: a committing transaction locks only the stripes its footprint
	// hashes into, so footprint-disjoint transactions replay their
	// commits concurrently. 0 means the stm default; 1 degenerates to the
	// paper's single global commit lock.
	CommitStripes int
	// Record, when non-nil, receives each committed transaction's
	// operation log inside the commit's publication turn — commit order,
	// exactly once per accepted transaction (see internal/rec for the
	// chunked trace recorder / flight recorder built on this). Nil
	// disables recording at the cost of one branch per commit.
	Record CommitSink
	// Trace, when non-nil, records every run's protocol events (task
	// spans, validations, commits, aborts with reasons, cache queries)
	// into per-worker ring buffers; see RunStats.Timeline and
	// Trace.WriteChromeJSON. Nil disables tracing at no cost.
	Trace *Trace
	// Observe, when non-empty, starts a debug HTTP endpoint on the
	// address (e.g. ":6060") serving /debug/vars (expvar, including the
	// trace's counters and latency histograms) and /debug/pprof. Check
	// DebugAddr for the bound address and any bind error.
	Observe string
}

// Runner is a configured JANUS instance: train it once, then run task
// sets in parallel. The zero Config gives sequence-based detection with
// abstraction on.
type Runner struct {
	cfg     Config
	engine  *core.Engine
	obsAddr string
	obsErr  error
	// specRejected records a lenient LoadSpecPolicy rejection: the runner
	// permanently degrades to write-set detection (the cache cannot be
	// trusted to have been trained as intended).
	specRejected bool
	// gov is the persistent health governor (Config.GovernPersist). It is
	// built lazily on first use — not in New — so spec loading and lenient
	// rejection can still steer which detector it wraps.
	govOnce sync.Once
	gov     *health.Governor
}

// New builds a Runner. When cfg.Observe is set, the debug endpoint is
// started immediately and the trace (if any) is published to expvar.
func New(cfg Config) *Runner {
	r := &Runner{cfg: cfg, engine: core.NewEngine(core.Options{
		DisableAbstraction: cfg.DisableAbstraction,
		Online:             cfg.Online,
		LearnOnline:        cfg.LearnOnline,
		InferWAW:           cfg.InferWAW,
		Relax:              cfg.Relax,
		SkipVerify:         cfg.SkipTrainingVerify,
		CacheShards:        cfg.CacheShards,
	})}
	if cfg.Trace != nil {
		obs.Publish("janus.obs", cfg.Trace)
	}
	if cfg.Observe != "" {
		r.obsAddr, r.obsErr = obs.Serve(cfg.Observe)
	}
	return r
}

// DebugAddr returns the bound address of the Config.Observe debug
// endpoint, or the error that prevented it from starting.
func (r *Runner) DebugAddr() (string, error) { return r.obsAddr, r.obsErr }

// Train profiles the payload sequentially (no synchronization) from the
// given initial state and folds the learned commutativity conditions into
// the runner's cache. Call it once per training payload (the paper uses
// five runs).
func (r *Runner) Train(initial *State, tasks []Task) error {
	return r.engine.Train(initial, tasks)
}

// Freeze marks training complete: the commutativity cache becomes
// read-only and production lookups stop taking locks entirely. Further
// Train/LoadSpec calls are rejected or ignored, so call it only after the
// last training payload. A no-op under Config.LearnOnline, which must
// keep writing during parallel runs.
func (r *Runner) Freeze() { r.engine.Freeze() }

// TrainingReports returns the per-payload training summaries.
func (r *Runner) TrainingReports() []*train.Report { return r.engine.Reports() }

// CacheStats returns the commutativity cache's query accounting (the
// Figure 11 metrics).
func (r *Runner) CacheStats() cache.Stats { return r.engine.Cache().Stats() }

// ResetCacheStats clears query accounting (e.g. after a cold run).
func (r *Runner) ResetCacheStats() { r.engine.Cache().ResetStats() }

// SaveSpec writes the trained commutativity specification as JSON, the
// deployment artifact of the Figure 6 flow: train once on representative
// inputs, ship the spec, load it in production with LoadSpec.
func (r *Runner) SaveSpec(w io.Writer) error { return r.engine.SaveSpec(w) }

// ErrSpecFrozen is returned by LoadSpec after Freeze: spec loading is part
// of the training phase and must complete before the cache goes read-only.
var ErrSpecFrozen = cache.ErrFrozen

// SpecPolicy selects how LoadSpecPolicy treats a faulty artifact.
type SpecPolicy int

// Spec-loading policies.
const (
	// SpecStrict fails the load with the *SpecError (the LoadSpec
	// behavior): a bad artifact is a deployment error.
	SpecStrict SpecPolicy = iota
	// SpecLenient rejects the artifact but not the run: the runner
	// records the rejection, emits a spec.rejected trace event, and all
	// subsequent runs degrade to write-set detection.
	SpecLenient
)

// LoadSpec merges a saved commutativity specification into the runner —
// the production side of the Figure 6 deployment flow. The artifact's
// envelope is verified (magic, format version, CRC32 checksum) and its
// abstraction mode must match the runner's; any artifact fault is
// reported as a *SpecError and leaves the cache unchanged.
//
// LoadSpec is only legal before Freeze: the spec is training input, and a
// frozen cache is read-only. Calling it after Freeze returns
// ErrSpecFrozen (a contract violation, deliberately not a *SpecError).
func (r *Runner) LoadSpec(rd io.Reader) error { return r.engine.LoadSpec(rd) }

// LoadSpecPolicy is LoadSpec with a fault policy. Under SpecLenient an
// artifact fault (*SpecError) does not fail the call: the rejection is
// recorded (SpecRejected), a spec.rejected event is emitted on
// Config.Trace, and the runner degrades to write-set detection for all
// subsequent runs — the run proceeds correct-but-slower instead of dying
// on a corrupt deployment artifact. Non-artifact errors (I/O failures,
// ErrSpecFrozen) fail the call under either policy.
func (r *Runner) LoadSpecPolicy(rd io.Reader, policy SpecPolicy) error {
	err := r.engine.LoadSpec(rd)
	if err == nil || policy != SpecLenient {
		return err
	}
	var se *SpecError
	if !errors.As(err, &se) {
		return err
	}
	r.specRejected = true
	if t := r.cfg.Trace; t != nil {
		t.Emit(obs.Event{Type: obs.EvSpecRejected, When: t.Now(), Worker: -1, Detail: err.Error()})
	}
	return nil
}

// SpecRejected reports whether a lenient LoadSpecPolicy rejected an
// artifact, permanently degrading the runner to write-set detection.
func (r *Runner) SpecRejected() bool { return r.specRejected }

// RunStats aggregates one run's statistics.
type RunStats struct {
	// Run is the protocol-level accounting (commits, retries, and the
	// abort-reason breakdown — the Figure 10 metrics).
	Run stm.Stats
	// Detector is the conflict-detector accounting.
	Detector conflict.Stats
	// Timeline is the run's captured event timeline, merged across
	// worker lanes in time order; nil unless Config.Trace was set.
	Timeline []TraceEvent
	// Health is the governor's end-of-run snapshot (state, demotions,
	// probes, restores, window rates); nil unless Config.Govern was set.
	Health *HealthStats
}

// detector builds the configured detector instance for one run. A runner
// whose spec artifact was rejected leniently always detects by write set.
func (r *Runner) detector() conflict.Detector {
	if r.cfg.Detection == DetectWriteSet || r.specRejected {
		return conflict.NewWriteSet()
	}
	return r.engine.Detector()
}

// Governor returns the runner's persistent health governor, or nil unless
// both Config.Govern and Config.GovernPersist are set. The first call
// builds it (wrapping the runner's configured detector); every run of the
// runner then feeds the same sliding windows, so its state reflects
// sustained traffic. Callers use it for admission decisions: State()
// reports healthy/degraded/tripped live, and health.Publish can export it
// under a per-tenant expvar name.
func (r *Runner) Governor() *health.Governor {
	if !r.cfg.Govern || !r.cfg.GovernPersist {
		return nil
	}
	r.govOnce.Do(func() {
		gc := r.cfg.Governor
		if gc.Tracer == nil && r.cfg.Trace != nil {
			gc.Tracer = r.cfg.Trace
		}
		r.gov = health.NewGovernor(r.detector(), nil, gc)
	})
	return r.gov
}

func (r *Runner) run(ctx context.Context, initial *State, tasks []Task, ordered bool) (*State, RunStats, error) {
	det := r.detector()
	var tracer obs.Tracer
	if r.cfg.Trace != nil {
		tracer = r.cfg.Trace
	}
	var gov *health.Governor
	var stmGov stm.Governor
	if r.cfg.Govern {
		if r.cfg.GovernPersist {
			gov = r.Governor()
		} else {
			gc := r.cfg.Governor
			if gc.Tracer == nil {
				gc.Tracer = tracer
			}
			gov = health.NewGovernor(det, nil, gc)
		}
		health.Publish("janus.health", gov)
		det = gov
		stmGov = gov
	}
	final, stats, err := stm.RunCtx(ctx, stm.Config{
		Threads:         r.cfg.Threads,
		Ordered:         ordered,
		Detector:        det,
		Privatize:       r.cfg.Privatize,
		MaxRetries:      r.cfg.MaxRetries,
		ReclaimLogs:     r.cfg.ReclaimLogs,
		Tracer:          tracer,
		Backoff:         r.cfg.Backoff,
		SerializeAfter:  r.cfg.SerializeAfter,
		Governor:        stmGov,
		MaxHistory:      r.cfg.MaxHistory,
		MaxTxnOps:       r.cfg.MaxTxnOps,
		HistoryCompress: r.cfg.HistoryCompress,
		CompressAfter:   r.cfg.CompressAfter,
		CommitStripes:   r.cfg.CommitStripes,
		Record:          r.cfg.Record,
	}, initial, tasks)
	rs := RunStats{Run: stats}
	inner := det
	if gov != nil {
		s := gov.Stats()
		rs.Health = &s
		inner = gov.Primary()
	}
	switch d := inner.(type) {
	case *conflict.WriteSet:
		rs.Detector = d.Stats()
	case *conflict.Sequence:
		rs.Detector = d.Stats()
	}
	if gov != nil {
		// Fold in the detections the governor's write-set fallback
		// answered while degraded, so RunStats.Detector still accounts for
		// every detection of the run.
		if ws, ok := gov.Fallback().(*conflict.WriteSet); ok {
			fs := ws.Stats()
			rs.Detector.Detections += fs.Detections
			rs.Detector.Conflicts += fs.Conflicts
			rs.Detector.PairQueries += fs.PairQueries
			rs.Detector.Fallbacks += fs.Fallbacks
			rs.Detector.RelaxedChecks += fs.RelaxedChecks
			for k, v := range fs.Reasons {
				if rs.Detector.Reasons == nil {
					rs.Detector.Reasons = make(map[string]int64)
				}
				rs.Detector.Reasons[k] += v
			}
		}
	}
	if r.cfg.Trace != nil {
		rs.Timeline = r.cfg.Trace.Events()
	}
	return final, rs, err
}

// Run executes the tasks in parallel with unordered commits.
func (r *Runner) Run(initial *State, tasks []Task) (*State, RunStats, error) {
	return r.run(context.Background(), initial, tasks, false)
}

// RunCtx is Run with cancellation: when ctx is canceled or its deadline
// passes, in-flight transactions abort at their next protocol step,
// workers drain cleanly, and the context's error is returned (errors.Is
// against context.Canceled / context.DeadlineExceeded works). A task body
// that never returns cannot be preempted, so cancellation latency is
// bounded by the longest single task execution.
func (r *Runner) RunCtx(ctx context.Context, initial *State, tasks []Task) (*State, RunStats, error) {
	return r.run(ctx, initial, tasks, false)
}

// RunInOrder executes the tasks in parallel with commits following task
// order (the prototype's runInOrder).
func (r *Runner) RunInOrder(initial *State, tasks []Task) (*State, RunStats, error) {
	return r.run(context.Background(), initial, tasks, true)
}

// RunInOrderCtx is RunInOrder with cancellation; see RunCtx.
func (r *Runner) RunInOrderCtx(ctx context.Context, initial *State, tasks []Task) (*State, RunStats, error) {
	return r.run(ctx, initial, tasks, true)
}

// RunOutOfOrder executes the tasks in parallel with unordered commits
// (the prototype's runOutOfOrder).
func (r *Runner) RunOutOfOrder(initial *State, tasks []Task) (*State, RunStats, error) {
	return r.run(context.Background(), initial, tasks, false)
}

// Sequential executes the tasks one at a time with no synchronization —
// the paper's sequential baseline. The initial state is not mutated.
func Sequential(initial *State, tasks []Task) (*State, error) {
	return stm.RunSequential(initial, tasks)
}
