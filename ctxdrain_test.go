package janus

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/adt"
)

// leakCheck runs fn and asserts the goroutine count settles back to its
// pre-run level: a deadline-killed run must drain its workers and the
// context watcher, not leak them into the serving process.
func leakCheck(t *testing.T, fn func()) {
	t.Helper()
	before := runtime.NumGoroutine()
	fn()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRunCtxDeadlineDrainsUnderLoad is the server-shaped request shape:
// a batch whose deadline cannot be met (one task alone out-spins it, the
// rest contend on one counter and park in long backoff sleeps). Both
// RunCtx and RunInOrderCtx must return context.DeadlineExceeded and
// drain every worker, with cancellation latency bounded by the longest
// single task body — not by the 30s backoff budget.
func TestRunCtxDeadlineDrainsUnderLoad(t *testing.T) {
	mkTasks := func() []Task {
		tasks := []Task{func(ex Executor) error {
			// Out-spin the deadline: the run cannot finish before it
			// fires, so the drain path always executes.
			deadline := time.Now().Add(300 * time.Millisecond)
			for time.Now().Before(deadline) {
				adt.LocalWork(ex, 50_000)
			}
			return Counter{L: "work"}.Add(ex, 1)
		}}
		for i := 0; i < 63; i++ {
			tasks = append(tasks, addTask(1))
		}
		return tasks
	}
	run := func(t *testing.T, f func(*Runner, context.Context, *State, []Task) (*State, RunStats, error)) {
		r := New(Config{
			Detection: DetectWriteSet,
			Threads:   8,
			Backoff:   Backoff{Base: 30 * time.Second, Max: 30 * time.Second},
		})
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		start := time.Now()
		leakCheck(t, func() {
			_, _, err := f(r, ctx, exampleState(), mkTasks())
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want context.DeadlineExceeded", err)
			}
		})
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("drain took %v; want bounded by the longest task body", elapsed)
		}
	}
	t.Run("RunCtx", func(t *testing.T) {
		run(t, func(r *Runner, ctx context.Context, st *State, tasks []Task) (*State, RunStats, error) {
			return r.RunCtx(ctx, st, tasks)
		})
	})
	t.Run("RunInOrderCtx", func(t *testing.T) {
		run(t, func(r *Runner, ctx context.Context, st *State, tasks []Task) (*State, RunStats, error) {
			return r.RunInOrderCtx(ctx, st, tasks)
		})
	})
}

// TestRetryLimitErrorSurfacesTyped: retry exhaustion must reach callers
// as the typed *RetryLimitError through the public API, distinguishable
// from task-body failures, so a serving layer can map it to a retryable
// status instead of a permanent one.
func TestRetryLimitErrorSurfacesTyped(t *testing.T) {
	r := New(Config{Detection: DetectWriteSet, Threads: 8, MaxRetries: 1})
	tasks := make([]Task, 32)
	for i := range tasks {
		// Spin inside the transaction so executions overlap, then write
		// one shared counter: write-set detection aborts overlapping
		// writers, and with MaxRetries 1 the first abort anywhere is
		// already exhaustion.
		tasks[i] = func(ex Executor) error {
			adt.LocalWork(ex, 500_000)
			return Counter{L: "work"}.Add(ex, 1)
		}
	}
	_, _, err := r.Run(exampleState(), tasks)
	if err == nil {
		t.Skip("no task exhausted its retries this run (low contention)")
	}
	var rle *RetryLimitError
	if !errors.As(err, &rle) {
		t.Fatalf("err = %v, want *RetryLimitError", err)
	}
	if rle.Retries != 1 {
		t.Errorf("Retries = %d, want 1", rle.Retries)
	}
}

// TestGovernPersistReusesGovernor: with GovernPersist the runner keeps
// one governor across runs — Governor() returns the same live state
// machine before, during, and after runs, and its windows accumulate
// instead of resetting per batch.
func TestGovernPersistReusesGovernor(t *testing.T) {
	r := New(Config{Detection: DetectWriteSet, Threads: 2, Govern: true, GovernPersist: true})
	g := r.Governor()
	if g == nil {
		t.Fatal("Governor() = nil with Govern+GovernPersist")
	}
	if r.Governor() != g {
		t.Fatal("Governor() not stable across calls")
	}
	var after1 int64
	for i := 0; i < 3; i++ {
		_, stats, err := r.Run(exampleState(), []Task{addTask(1), addTask(2)})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Health == nil {
			t.Fatal("RunStats.Health = nil under Govern")
		}
		if i == 0 {
			after1 = stats.Health.Detections
		}
	}
	if got := g.Stats().Detections; got <= after1 {
		t.Errorf("persistent governor detections = %d after 3 runs, want > %d (accumulating, not per-run)", got, after1)
	}
	// Without GovernPersist there is no cross-run governor to expose.
	if ephemeral := New(Config{Govern: true}); ephemeral.Governor() != nil {
		t.Error("Governor() != nil without GovernPersist")
	}
}
